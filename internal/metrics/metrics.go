// Package metrics is a dependency-free instrumentation substrate for the
// skyline serving and build stack: lock-free counters, gauges, and latency
// histograms collected in a Registry and exposed in the Prometheus text
// format (version 0.0.4).
//
// Hot-path operations (Counter.Inc, Gauge.Set, Histogram.Observe) are single
// atomic instructions — safe and cheap to call from every request handler
// concurrently. Registration (Registry.Counter and friends) takes a mutex
// and is intended to happen once per metric series; handlers should hold on
// to the returned metric rather than re-looking it up per request, although
// re-lookup is also safe.
//
// All methods are safe on a nil *Registry: they return live but unregistered
// metrics, so instrumented code needs no nil checks.
//
// Metric names follow Prometheus conventions: durations are observed in
// seconds, totals end in _total, and label pairs are passed as alternating
// key, value strings:
//
//	reg := metrics.NewRegistry()
//	builds := reg.Counter("skydiag_builds_total", "Diagram builds.", "kind", "quadrant")
//	builds.Inc()
//	lat := reg.Histogram("http_request_seconds", "Request latency.", "endpoint", "/v1/skyline")
//	start := time.Now()
//	...
//	lat.ObserveDuration(time.Since(start))
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing 64-bit counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n. Negative deltas are ignored: counters are
// monotonic by contract.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 value that may go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// defaultBounds are the histogram bucket upper bounds, in seconds:
// exponential from 1µs doubling up to ~537s, which comfortably spans both
// sub-millisecond point-location queries and multi-second diagram builds.
var defaultBounds = func() []float64 {
	bounds := make([]float64, 30)
	b := 1e-6
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}()

// Histogram accumulates float64 observations (conventionally seconds) into
// exponential buckets. All updates are lock-free.
type Histogram struct {
	counts  []atomic.Int64 // len(defaultBounds)+1; last bucket is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 sum of observations
}

func newHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Int64, len(defaultBounds)+1)}
}

// Observe records one value. Values are clamped into the bucket range; NaN
// observations are dropped.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(defaultBounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a point-in-time copy of a histogram, suitable for
// quantile estimation. Counts[i] holds observations in (Bounds[i-1],
// Bounds[i]]; the final entry counts observations above every bound.
type HistogramSnapshot struct {
	Count  int64
	Sum    float64
	Bounds []float64
	Counts []int64
}

// Snapshot copies the histogram state. The per-bucket counts and the total
// are read without a global lock, so a snapshot taken during concurrent
// observation may be off by in-flight observations — fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
		Bounds: defaultBounds,
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// inside the containing bucket, the same estimate Prometheus's
// histogram_quantile computes. It returns 0 for an empty histogram and the
// largest finite bound for observations beyond it.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			upper := 0.0
			lower := 0.0
			if i < len(s.Bounds) {
				upper = s.Bounds[i]
			} else {
				return s.Bounds[len(s.Bounds)-1]
			}
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + (upper-lower)*frac
		}
		cum += c
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the average observation, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one labelled instance of a metric family. Exactly one of c, g, h
// is non-nil, matching the family type.
type series struct {
	labels string // rendered `k="v",...` sorted by key, "" when unlabelled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

type family struct {
	help    string
	typ     string
	order   []string // label keys in registration order
	byLabel map[string]*series
}

// Registry holds named metric families. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use, and safe on a nil
// receiver (returning unregistered metrics).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup finds or creates the series for (name, labels) with the given type.
// A name registered under a different type yields a fresh unregistered
// series rather than corrupting the family — the misuse surfaces as a metric
// that silently stops being exported, never as a crash in the serving path.
func (r *Registry) lookup(name, help, typ string, labels []string) *series {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{help: help, typ: typ, byLabel: make(map[string]*series)}
		r.families[name] = f
	}
	if f.typ != typ {
		return newSeries("", typ)
	}
	s, ok := f.byLabel[key]
	if !ok {
		s = newSeries(key, typ)
		f.byLabel[key] = s
		f.order = append(f.order, key)
	}
	return s
}

func newSeries(key, typ string) *series {
	s := &series{labels: key}
	switch typ {
	case typeCounter:
		s.c = new(Counter)
	case typeGauge:
		s.g = new(Gauge)
	case typeHistogram:
		s.h = newHistogram()
	}
	return s
}

// Counter returns the counter registered under name with the given label
// pairs, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return new(Counter)
	}
	return r.lookup(name, help, typeCounter, labels).c
}

// Gauge returns the gauge registered under name with the given label pairs,
// creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return new(Gauge)
	}
	return r.lookup(name, help, typeGauge, labels).g
}

// Histogram returns the histogram registered under name with the given label
// pairs, creating it on first use.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	if r == nil {
		return newHistogram()
	}
	return r.lookup(name, help, typeHistogram, labels).h
}

// renderLabels turns alternating key, value arguments into a canonical
// `k="v",...` fragment sorted by key. A dangling key without a value is
// dropped.
func renderLabels(labels []string) string {
	n := len(labels) / 2
	if n == 0 {
		return ""
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, n)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(h string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

// ContentType is the Content-Type of the exposition format WritePrometheus
// emits.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format, families sorted by name, series in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	// Copy the series lists under the lock; the values themselves are
	// atomics, read afterwards without it.
	type fam struct {
		name, help, typ string
		series          []*series
	}
	fams := make([]fam, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		ss := make([]*series, 0, len(f.order))
		for _, key := range f.order {
			ss = append(ss, f.byLabel[key])
		}
		fams = append(fams, fam{name, f.help, f.typ, ss})
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(w, f.name, f.typ, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, name, typ string, s *series) error {
	switch typ {
	case typeCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(name, s.labels), s.c.Value())
		return err
	case typeGauge:
		_, err := fmt.Fprintf(w, "%s %s\n", seriesName(name, s.labels), formatFloat(s.g.Value()))
		return err
	case typeHistogram:
		snap := s.h.Snapshot()
		var cum int64
		for i, c := range snap.Counts {
			cum += c
			le := "+Inf"
			if i < len(snap.Bounds) {
				le = formatFloat(snap.Bounds[i])
			}
			labels := s.labels
			if labels != "" {
				labels += ","
			}
			labels += `le="` + le + `"`
			if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, labels, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, bracketed(s.labels), formatFloat(snap.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, bracketed(s.labels), snap.Count)
		return err
	}
	return nil
}

func seriesName(name, labels string) string {
	return name + bracketed(labels)
}

func bracketed(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
