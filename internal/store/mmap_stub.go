//go:build !unix

package store

import (
	"errors"
	"os"
)

// Platforms without the unix mmap syscalls: OpenMmap degrades gracefully to
// the ReadAt page-cache path.
func mmapFile(_ *os.File, _ int64) ([]byte, error) {
	return nil, errors.ErrUnsupported
}

func munmapFile(_ []byte) error { return nil }
