// Package pir implements private skyline queries over a precomputed skyline
// diagram — the third application the paper lists (Section I): "enable
// efficient Private Information Retrieval (PIR) based skyline queries,
// similar to using Voronoi diagram for PIR based kNN queries".
//
// The diagram reduces a skyline query to a table lookup (cell index →
// result), which is exactly the shape PIR protocols retrieve privately. The
// scheme here is classic two-server information-theoretic PIR (Chor et al.):
// the diagram's cell table is replicated on two non-colluding servers; the
// client sends each server a random-looking subset of cell indices whose
// symmetric difference is the target cell; each server XORs the requested
// records; the client XORs the two responses to recover the record. Each
// individual server's view is a uniformly random subset, independent of the
// queried cell.
//
// Records are fixed-size encodings of per-cell skyline results, padded to
// the diagram's maximum result size so record length leaks nothing.
package pir

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
)

// Record is a fixed-size encoding of one cell's skyline result.
type Record []byte

// Server is one of the two replicated PIR servers: it holds the public cell
// table and answers subset-XOR queries. It never learns which cell the
// client wants.
type Server struct {
	records []Record
	recLen  int
}

// Database builds the replicated cell table from a quadrant diagram: record
// k encodes the ids of cell k (row-major), length-prefixed and zero-padded
// to the maximum result size.
func Database(d *core.QuadrantDiagram) (*Server, error) {
	g := d.Grid()
	cols, rows := g.Cols(), g.Rows()
	max := 0
	for i := 0; i < cols; i++ {
		for j := 0; j < rows; j++ {
			if n := len(d.Cells().Cell(i, j)); n > max {
				max = n
			}
		}
	}
	recLen := 4 + 4*max
	s := &Server{recLen: recLen, records: make([]Record, cols*rows)}
	for i := 0; i < cols; i++ {
		for j := 0; j < rows; j++ {
			ids := d.Cells().Cell(i, j)
			rec := make(Record, recLen)
			binary.BigEndian.PutUint32(rec, uint32(len(ids)))
			for k, id := range ids {
				binary.BigEndian.PutUint32(rec[4+4*k:], uint32(id))
			}
			s.records[i*rows+j] = rec
		}
	}
	return s, nil
}

// NumRecords returns the table size.
func (s *Server) NumRecords() int { return len(s.records) }

// RecordLen returns the fixed record length in bytes.
func (s *Server) RecordLen() int { return s.recLen }

// Answer XORs the records selected by the query bit-vector.
func (s *Server) Answer(query []byte) (Record, error) {
	if len(query) != (len(s.records)+7)/8 {
		return nil, fmt.Errorf("pir: query length %d, want %d bits", len(query)*8, len(s.records))
	}
	out := make(Record, s.recLen)
	for k := range s.records {
		if query[k/8]&(1<<(k%8)) != 0 {
			for b, v := range s.records[k] {
				out[b] ^= v
			}
		}
	}
	return out, nil
}

// Client runs private skyline queries against two non-colluding servers.
type Client struct {
	xs, ys []float64
	nrec   int
}

// NewClient needs only the public grid lines (to locate queries) and the
// table size.
func NewClient(xs, ys []float64, numRecords int) *Client {
	return &Client{xs: append([]float64(nil), xs...), ys: append([]float64(nil), ys...), nrec: numRecords}
}

// Queries produces the two subset queries for the cell containing q. Each
// query alone is a uniformly random bit-vector; their XOR selects exactly
// the target cell.
func (c *Client) Queries(q geom.Point) (q1, q2 []byte, err error) {
	i := locate(c.xs, q.X())
	j := locate(c.ys, q.Y())
	target := i*(len(c.ys)+1) + j
	nbytes := (c.nrec + 7) / 8
	q1 = make([]byte, nbytes)
	if _, err := rand.Read(q1); err != nil {
		return nil, nil, fmt.Errorf("pir: %v", err)
	}
	// Mask padding bits beyond nrec for cleanliness.
	if c.nrec%8 != 0 {
		q1[nbytes-1] &= byte(1<<(c.nrec%8)) - 1
	}
	q2 = append([]byte(nil), q1...)
	q2[target/8] ^= 1 << (target % 8)
	return q1, q2, nil
}

// Reconstruct XORs the two server answers and decodes the result ids.
func (c *Client) Reconstruct(a1, a2 Record) ([]int32, error) {
	if len(a1) != len(a2) || len(a1) < 4 {
		return nil, fmt.Errorf("pir: answer lengths %d, %d invalid", len(a1), len(a2))
	}
	rec := make(Record, len(a1))
	for b := range rec {
		rec[b] = a1[b] ^ a2[b]
	}
	n := binary.BigEndian.Uint32(rec)
	if int(n) > (len(rec)-4)/4 {
		return nil, fmt.Errorf("pir: corrupt record, claims %d ids in %d bytes", n, len(rec))
	}
	ids := make([]int32, n)
	for k := range ids {
		ids[k] = int32(binary.BigEndian.Uint32(rec[4+4*k:]))
	}
	return ids, nil
}

func locate(vs []float64, v float64) int {
	lo, hi := 0, len(vs)
	for lo < hi {
		mid := (lo + hi) / 2
		if vs[mid] > v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
