package dyndiag

import "repro/internal/resultset"

// ArenaLive returns the number of arena ids referenced by some subcell and
// the total arena size; the difference is garbage left by copy-on-write
// maintenance (WithInsert/WithDelete).
func (d *Diagram) ArenaLive() (live, total int) {
	if d.results == nil {
		return 0, 0
	}
	return resultset.LiveArena(d.labels, d.results)
}

// CompactArena returns an equivalent diagram over a garbage-free result
// table, relabelled in first-use order — byte-identical to what a rebuild
// would intern. The receiver is unchanged.
func (d *Diagram) CompactArena() *Diagram {
	if d.results == nil {
		return d
	}
	labels, table := resultset.CompactLabels(d.labels, d.results)
	return &Diagram{
		Points:  d.Points,
		Sub:     d.Sub,
		labels:  labels,
		results: table,
		rows:    d.rows,
	}
}
