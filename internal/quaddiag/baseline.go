package quaddiag

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/grid"
)

// BuildBaseline computes the quadrant skyline diagram with Algorithm 1:
// sort the points once on x, then for every skyline cell scan the sorted
// list, keep the candidates strictly above the cell's lower-left corner in
// both coordinates, and sweep them for the 2-D skyline in linear time.
// O(n^3) total. Unlike the optimized constructions it tolerates duplicate
// coordinates, which makes it the reference implementation.
func BuildBaseline(pts []geom.Point) (*Diagram, error) {
	if err := require2D(pts); err != nil {
		return nil, err
	}
	g := grid.NewGrid(pts)
	d := newDiagram(pts, g)

	// Line 1 of Algorithm 1: sort ascending on x (ties by y so the linear
	// maxima sweep below stays correct with duplicates).
	sorted := make([]geom.Point, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].X() != sorted[b].X() {
			return sorted[a].X() < sorted[b].X()
		}
		return sorted[a].Y() < sorted[b].Y()
	})

	for i := 0; i < g.Cols(); i++ {
		for j := 0; j < g.Rows(); j++ {
			cx, cy := g.Corner(i, j)
			// Lines 4–12: filter candidates and sweep. The list is x-sorted,
			// so the skyline is every candidate whose y strictly improves on
			// the best seen so far — plus exact coordinate twins of the last
			// kept point, which are incomparable with it.
			var ids []int32
			var last geom.Point
			have := false
			for _, p := range sorted {
				if !(p.X() > cx && p.Y() > cy) {
					continue
				}
				switch {
				case !have || p.Y() < last.Y():
					ids = append(ids, int32(p.ID))
					last, have = p, true
				case p.X() == last.X() && p.Y() == last.Y():
					ids = append(ids, int32(p.ID))
				}
			}
			sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
			d.setCell(i, j, ids)
		}
	}
	d.freeze()
	return d, nil
}

func require2D(pts []geom.Point) error {
	for _, p := range pts {
		if p.Dim() != 2 {
			return fmt.Errorf("quaddiag: planar construction requires 2-D points, p%d has dimension %d (use the HD variants)", p.ID, p.Dim())
		}
	}
	return nil
}
