package quaddiag

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/resultset"
)

// Export returns the diagram's points and per-cell results (row-major,
// cells[i*rows+j]) for serialization. The cell slices alias the diagram's
// arena; callers must treat them as read-only. Empty cells export as nil,
// matching the construction-time representation.
func (d *Diagram) Export() (pts []geom.Point, cells [][]int32) {
	cells = make([][]int32, len(d.labels))
	for k, l := range d.labels {
		if d.results.Len(l) > 0 {
			cells[k] = d.results.Result(l)
		}
	}
	return d.Points, cells
}

// ExportCSR returns the diagram's interned form for zero-copy serialization:
// the row-major per-cell labels and the shared result table.
func (d *Diagram) ExportCSR() (labels []uint32, table *resultset.Table) {
	return d.labels, d.results
}

// FromCells reconstructs a Diagram from serialized state: the original
// points and the row-major per-cell results. It validates the cell count
// against the grid implied by the points.
func FromCells(pts []geom.Point, cells [][]int32) (*Diagram, error) {
	if err := require2D(pts); err != nil {
		return nil, err
	}
	g := grid.NewGrid(pts)
	if len(cells) != g.NumCells() {
		return nil, fmt.Errorf("quaddiag: %d cells for a %dx%d grid", len(cells), g.Cols(), g.Rows())
	}
	d := newDiagram(pts, g)
	copy(d.scratch, cells)
	d.freeze()
	return d, nil
}

// FromCSR reconstructs a Diagram from its interned form: the original
// points, the row-major per-cell labels, and the shared result table. The
// labels and table are retained, not copied.
func FromCSR(pts []geom.Point, labels []uint32, table *resultset.Table) (*Diagram, error) {
	if err := require2D(pts); err != nil {
		return nil, err
	}
	g := grid.NewGrid(pts)
	if len(labels) != g.NumCells() {
		return nil, fmt.Errorf("quaddiag: %d labels for a %dx%d grid", len(labels), g.Cols(), g.Rows())
	}
	for _, l := range labels {
		if int(l) >= table.NumResults() {
			return nil, fmt.Errorf("quaddiag: label %d out of range (%d results)", l, table.NumResults())
		}
	}
	return &Diagram{
		Points:  pts,
		Grid:    g,
		byID:    pointIndex(pts),
		labels:  labels,
		results: table,
		rows:    g.Rows(),
	}, nil
}
