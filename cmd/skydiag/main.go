// Command skydiag is the command-line interface to the skyline diagram
// library:
//
//	skydiag gen        -n 100 -dist anti [-domain 256] [-seed 7] -o points.csv
//	skydiag build      -in points.csv -kind quadrant [-alg scanning]
//	skydiag query      -in points.csv -kind dynamic -q 10,80
//	skydiag svg        -in points.csv -kind quadrant|dynamic|sweeping|voronoi -o out.svg
//	skydiag save       -in points.csv -o diagram.sky
//	skydiag serve-file -in diagram.sky -q 10,80
//	skydiag influence  -in points.csv -id 11
//	skydiag trajectory -in points.csv -waypoints "2,70;30,95"
//
// Data files are CSV lines "id,x,y". Omitting -in for the demo commands uses
// the paper's 11-hotel running example.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dyndiag"
	"repro/internal/geom"
	"repro/internal/quaddiag"
	"repro/internal/safezone"
	"repro/internal/store"
	"repro/internal/svgplot"
	"repro/internal/voronoi"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "build":
		err = cmdBuild(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "svg":
		err = cmdSVG(os.Args[2:])
	case "save":
		err = cmdSave(os.Args[2:])
	case "serve-file":
		err = cmdServeFile(os.Args[2:])
	case "influence":
		err = cmdInfluence(os.Args[2:])
	case "trajectory":
		err = cmdTrajectory(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "skydiag: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "skydiag:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: skydiag <command> [flags]

commands:
  gen         generate a synthetic dataset as CSV
  build       build a skyline diagram and report its statistics
  query       answer a skyline query for a point
  svg         render a diagram as SVG
  save        build a quadrant diagram and persist it as a paged file
  serve-file  answer a query from a persisted diagram file (no rebuild)
  influence   report where in query space a point is competitive
  trajectory  continuous skyline timeline of a moving query

run "skydiag <command> -h" for per-command flags`)
}

func loadPoints(path string) ([]geom.Point, error) {
	if path == "" {
		return dataset.Hotels(), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadCSV(f)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	n := fs.Int("n", 100, "number of points")
	dim := fs.Int("dim", 2, "dimensions")
	distName := fs.String("dist", "inde", "distribution: inde|corr|anti|clus")
	domain := fs.Int("domain", 0, "integer domain size (0 = continuous)")
	seed := fs.Int64("seed", 42, "seed")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)

	dist, err := dataset.ParseDistribution(*distName)
	if err != nil {
		return err
	}
	pts, err := dataset.Generate(dataset.Config{N: *n, Dim: *dim, Dist: dist, Domain: *domain, Seed: *seed})
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return dataset.WriteCSV(w, pts)
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	in := fs.String("in", "", "input CSV (default: the paper's hotel example)")
	kind := fs.String("kind", "quadrant", "diagram kind: quadrant|global|dynamic")
	alg := fs.String("alg", "", "construction algorithm (default: scanning)")
	fs.Parse(args)

	pts, err := loadPoints(*in)
	if err != nil {
		return err
	}
	opts := core.Options{Algorithm: *alg}
	switch *kind {
	case "quadrant":
		d, err := core.BuildQuadrant(pts, opts)
		if err != nil {
			return err
		}
		st, err := d.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("points=%d cells=%d polyominoes=%d avg_sky=%.2f max_sky=%d\n",
			st.N, st.Cells, st.Polyominoes, st.AvgSkySize, st.MaxSkySize)
	case "global":
		d, err := core.BuildGlobal(pts, opts)
		if err != nil {
			return err
		}
		part, err := d.Polyominoes()
		if err != nil {
			return err
		}
		fmt.Printf("points=%d cells=%d polyominoes=%d\n",
			len(pts), d.Grid().NumCells(), part.NumRegions)
	case "dynamic":
		d, err := core.BuildDynamic(pts, opts)
		if err != nil {
			return err
		}
		part, err := d.Polyominoes()
		if err != nil {
			return err
		}
		fmt.Printf("points=%d subcells=%d polyominoes=%d\n",
			len(pts), d.SubGrid().NumSubcells(), part.NumRegions)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	return nil
}

func parseQuery(s string) (geom.Point, error) {
	parts := strings.Split(s, ",")
	coords := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return geom.Point{}, fmt.Errorf("bad query coordinate %q: %v", p, err)
		}
		coords[i] = v
	}
	return geom.Point{ID: -1, Coords: coords}, nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	in := fs.String("in", "", "input CSV (default: the paper's hotel example)")
	kind := fs.String("kind", "quadrant", "query kind: quadrant|global|dynamic")
	qstr := fs.String("q", "10,80", "query point, comma-separated coordinates")
	precompute := fs.Bool("diagram", true, "answer via precomputed diagram (false = from scratch)")
	fs.Parse(args)

	pts, err := loadPoints(*in)
	if err != nil {
		return err
	}
	q, err := parseQuery(*qstr)
	if err != nil {
		return err
	}
	var result []geom.Point
	switch *kind {
	case "quadrant":
		if *precompute {
			d, err := core.BuildQuadrant(pts, core.Options{})
			if err != nil {
				return err
			}
			result = d.QueryPoints(q)
		} else {
			result = core.QuadrantSkyline(pts, q)
		}
	case "global":
		if *precompute {
			d, err := core.BuildGlobal(pts, core.Options{})
			if err != nil {
				return err
			}
			result = d.QueryPoints(q)
		} else {
			result = core.GlobalSkyline(pts, q)
		}
	case "dynamic":
		if *precompute {
			d, err := core.BuildDynamic(pts, core.Options{})
			if err != nil {
				return err
			}
			result = d.QueryPoints(q)
		} else {
			result = core.DynamicSkyline(pts, q)
		}
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	for _, p := range result {
		fmt.Println(p)
	}
	return nil
}

func cmdSVG(args []string) error {
	fs := flag.NewFlagSet("svg", flag.ExitOnError)
	in := fs.String("in", "", "input CSV (default: the paper's hotel example)")
	kind := fs.String("kind", "quadrant", "rendering: quadrant|dynamic|sweeping|voronoi")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)

	pts, err := loadPoints(*in)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *kind {
	case "quadrant":
		d, err := quaddiag.BuildScanning(pts)
		if err != nil {
			return err
		}
		part, err := d.Merge()
		if err != nil {
			return err
		}
		return svgplot.WriteQuadrantDiagram(w, pts, d.Grid, part, svgplot.DefaultCanvas())
	case "dynamic":
		d, err := dyndiag.BuildScanning(pts)
		if err != nil {
			return err
		}
		part, err := d.Merge()
		if err != nil {
			return err
		}
		return svgplot.WriteDynamicDiagram(w, pts, d.Sub, part, svgplot.DefaultCanvas())
	case "sweeping":
		sw, err := quaddiag.BuildSweeping(pts)
		if err != nil {
			return err
		}
		return svgplot.WriteSweepingDiagram(w, pts, sw.Rings, svgplot.DefaultCanvas())
	case "voronoi":
		r, err := voronoi.Rasterize(pts, 160, 160)
		if err != nil {
			return err
		}
		return svgplot.WriteVoronoi(w, pts, r, svgplot.DefaultCanvas())
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
}

func cmdSave(args []string) error {
	fs := flag.NewFlagSet("save", flag.ExitOnError)
	in := fs.String("in", "", "input CSV (default: the paper's hotel example)")
	out := fs.String("o", "diagram.sky", "output diagram file")
	fs.Parse(args)

	pts, err := loadPoints(*in)
	if err != nil {
		return err
	}
	d, err := quaddiag.BuildScanning(pts)
	if err != nil {
		return err
	}
	if err := store.CreateFile(*out, d); err != nil {
		return err
	}
	fi, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d points, %d cells, %d bytes\n",
		*out, len(pts), d.Grid.NumCells(), fi.Size())
	return nil
}

func cmdServeFile(args []string) error {
	fs := flag.NewFlagSet("serve-file", flag.ExitOnError)
	in := fs.String("in", "diagram.sky", "diagram file written by 'skydiag save'")
	qstr := fs.String("q", "10,80", "query point")
	fs.Parse(args)

	s, err := store.Open(*in)
	if err != nil {
		return err
	}
	defer s.Close()
	q, err := parseQuery(*qstr)
	if err != nil {
		return err
	}
	ids, err := s.Query(q)
	if err != nil {
		return err
	}
	byID := make(map[int32]geom.Point)
	for _, p := range s.Points() {
		byID[int32(p.ID)] = p
	}
	for _, id := range ids {
		fmt.Println(byID[id])
	}
	return nil
}

func cmdInfluence(args []string) error {
	fs := flag.NewFlagSet("influence", flag.ExitOnError)
	in := fs.String("in", "", "input CSV (default: the paper's hotel example)")
	id := fs.Int("id", -1, "point id; -1 prints the full influence ranking")
	fs.Parse(args)

	pts, err := loadPoints(*in)
	if err != nil {
		return err
	}
	d, err := quaddiag.BuildScanning(pts)
	if err != nil {
		return err
	}
	if *id >= 0 {
		reg, err := d.Influence(*id)
		if err != nil {
			return err
		}
		fmt.Printf("p%d appears in the skyline result of %d of %d cells (clipped area %.2f)\n",
			*id, reg.Cells, d.Grid.NumCells(), reg.Area)
		return nil
	}
	rank, err := d.InfluenceRanking()
	if err != nil {
		return err
	}
	for _, rc := range rank {
		fmt.Printf("p%-6d %6d cells\n", rc.ID, rc.Cells)
	}
	return nil
}

func cmdTrajectory(args []string) error {
	fs := flag.NewFlagSet("trajectory", flag.ExitOnError)
	in := fs.String("in", "", "input CSV (default: the paper's hotel example)")
	way := fs.String("waypoints", "2,70;30,95", "semicolon-separated x,y waypoints")
	fs.Parse(args)

	pts, err := loadPoints(*in)
	if err != nil {
		return err
	}
	d, err := quaddiag.BuildScanning(pts)
	if err != nil {
		return err
	}
	var waypoints []geom.Point
	for _, part := range strings.Split(*way, ";") {
		q, err := parseQuery(part)
		if err != nil {
			return err
		}
		if q.Dim() != 2 {
			return fmt.Errorf("waypoints are 2-D, got %q", part)
		}
		waypoints = append(waypoints, q)
	}
	tl, err := safezone.PolylineForQuadrant(d, waypoints)
	if err != nil {
		return err
	}
	fmt.Printf("%d safe zones crossed, %d result changes:\n", len(tl), safezone.Changes(tl))
	for _, iv := range tl {
		fmt.Printf("  t ∈ [%.3f, %.3f): %v\n", iv.T0, iv.T1, iv.IDs)
	}
	return nil
}
