package server

import (
	"fmt"
	"log"
	"net/http"
	"strconv"

	"repro/internal/store"
)

// Snapshot replication. The builder node exposes its published snapshot as
// a store-format file over GET /v1/snapshot; read replicas poll it with
// their current epoch and swap the fetched file in via SwapStore. The
// negotiation is deliberately dumb — full-state transfer with an epoch
// short-circuit — because the store file is already the minimal replication
// artifact: canonicalized (same point set => same bytes regardless of
// maintenance history), CRC-trailed (a torn fetch fails at open, so the
// transport needs no integrity protocol), and mmap-ready (a replica serves
// it without materialization).
//
// Catch-up protocol: a replica sends ?epoch=N (the snapshot generation it
// serves) and optionally If-None-Match with the ETag it last saw. If the
// builder's epoch is <= N the reply is 304 Not Modified with X-Sky-Epoch,
// costing one header round trip. Otherwise the reply is the full current
// snapshot — there are no deltas, so a replica that fell arbitrarily far
// behind (or starts empty with epoch 0) catches up in exactly one fetch.

// snapshotETag is the entity tag for one published snapshot generation.
func snapshotETag(epoch uint64, kind string) string {
	return fmt.Sprintf("%q", fmt.Sprintf("sky-e%d-%s", epoch, kind))
}

// handleSnapshot streams the current snapshot in store format.
//
//	GET /v1/snapshot?epoch=3            full snapshot, or 304 if epoch <= 3
//	GET /v1/snapshot?kind=dynamic       explicit kind (must match what's served)
//
// A builder serves its in-memory quadrant diagram (the replication
// artifact); a serve-from replica relays its mapped file byte-identically,
// so a chain of replicas converges on the exact same bytes.
func (h *Handler) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snap := h.snapshot()
	kind, err := normalizeKind(r.URL.Query().Get("kind"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	servedKind := "quadrant"
	if snap.stored != nil {
		servedKind = snap.storedKind
	}
	if kind != servedKind {
		writeError(w, http.StatusNotImplemented,
			fmt.Sprintf("snapshot serves kind %q only", servedKind))
		return
	}
	etag := snapshotETag(snap.epoch, servedKind)
	setEpochHeader(w, snap.epoch)
	w.Header().Set("ETag", etag)
	if notModified(r, snap.epoch, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	var werr error
	if snap.stored != nil {
		_, werr = snap.stored.st.WriteTo(w)
	} else {
		werr = store.WriteEpoch(w, snap.quadrant.Cells(), snap.epoch)
	}
	if werr != nil {
		// The status line is already on the wire; the replica detects the
		// torn body by CRC at open and refetches.
		log.Printf("skyserve: snapshot stream aborted: %v", werr)
	}
	h.reg.Counter("skyserve_snapshot_fetches_total",
		"Full snapshot bodies streamed to replicas via /v1/snapshot.").Inc()
	if werr == nil {
		// A replica just pulled this generation, so its bytes are durable
		// off-box too — a natural moment to checkpoint the local WAL.
		// Off the request path; no-op without a WAL or when already current.
		h.checkpointAsync()
	}
}

// notModified reports whether the client already holds this generation:
// its ?epoch= is at or past ours, or its If-None-Match carries our ETag.
func notModified(r *http.Request, epoch uint64, etag string) bool {
	if e := r.URL.Query().Get("epoch"); e != "" {
		if have, err := strconv.ParseUint(e, 10, 64); err == nil && have >= epoch {
			return true
		}
	}
	return r.Header.Get("If-None-Match") == etag
}

// SwapStore atomically replaces a serve-from handler's snapshot with a newer
// store and returns the previous one, which the caller must Close once any
// in-flight readers drain (store.Close waits for them). Only valid on
// handlers built with NewServeFrom; the new store's epoch must be strictly
// newer than the served one, so a stale or replayed snapshot can never
// roll a replica backwards.
func (h *Handler) SwapStore(st *store.Store) (*store.Store, error) {
	if !h.readOnly {
		return nil, fmt.Errorf("server: SwapStore on a non-serve-from handler")
	}
	kind := st.Kind()
	if kind == "" {
		return nil, fmt.Errorf("server: store has unknown diagram kind")
	}
	next := serveFromState(st, kind)
	h.mu.Lock()
	prev := h.st
	if next.epoch <= prev.epoch {
		h.mu.Unlock()
		return nil, fmt.Errorf("server: snapshot epoch %d is not newer than served epoch %d",
			next.epoch, prev.epoch)
	}
	h.setState(next)
	h.mu.Unlock()
	h.swaps.Inc()
	return prev.stored.st, nil
}
