package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
)

// The paper's running example: eleven hotels, a guest at q = (10, 80).
func ExampleBuildQuadrant() {
	hotels := dataset.Hotels()
	d, err := core.BuildQuadrant(hotels, core.Options{})
	if err != nil {
		panic(err)
	}
	q := core.Pt(-1, 10, 80)
	fmt.Println(d.Query(q))
	// Output: [3 8 10]
}

func ExampleBuildGlobal() {
	hotels := dataset.Hotels()
	d, err := core.BuildGlobal(hotels, core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(d.Query(core.Pt(-1, 10, 80)))
	// Output: [3 6 8 10 11]
}

func ExampleBuildDynamic() {
	hotels := dataset.Hotels()
	d, err := core.BuildDynamic(hotels, core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(d.Query(core.Pt(-1, 10, 80)))
	// Output: [6 11]
}

func ExampleQuadrantDiagram_WithInsert() {
	hotels := dataset.Hotels()
	d, err := core.BuildQuadrant(hotels, core.Options{})
	if err != nil {
		panic(err)
	}
	// A new hotel at (13, 85) dominates part of the old answer.
	updated, err := d.WithInsert(core.Pt(99, 13, 85))
	if err != nil {
		panic(err)
	}
	fmt.Println(updated.Query(core.Pt(-1, 10, 80)))
	// Output: [8 99]
}

func ExampleDynamicSkyline() {
	hotels := dataset.Hotels()
	for _, p := range core.DynamicSkyline(hotels, core.Pt(-1, 10, 80)) {
		fmt.Println(p)
	}
	// Output:
	// p6[4 88]
	// p11[11 70]
}
