package server

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
)

// Write coalescing. Inserts and deletes enqueue a pendingOp; whichever
// writer acquires the writer slot becomes the batch leader, claims up to
// MaxCoalesce queued ops FIFO, folds them through one incremental
// maintenance pass (core.DiagramSet.ApplyBatch) and one snapshot swap, and
// delivers each op its own result — so a burst of writers pays one
// maintenance pass instead of one per op, while 409/404 attribution stays
// per-op (a rejected op is skipped inside the batch, it does not poison its
// neighbours).
//
// Shedding keeps the strict before-any-state-change guarantee of the
// pre-coalescing path: a waiter whose deadline expires withdraws its op, but
// only while the op is still unclaimed. Once a leader has claimed the op the
// waiter blocks for the authoritative result even past its deadline, because
// the batch may already have applied it — answering 503 then would lie about
// a write that took effect.

// pendingOp is one queued write and its result channel (buffered; each op
// receives exactly one result from the leader that claims it).
type pendingOp struct {
	op   core.Op
	done chan opResult
}

type opResult struct {
	points int
	err    error
}

// submitOp runs one insert/delete through the coalescing queue end to end:
// enqueue, then either lead a batch or wait for another leader to deliver
// the result. The slot wait is bounded by ctx (Config.UpdateWait plus the
// client's own deadline) exactly like the pre-coalescing writer path.
func (h *Handler) submitOp(ctx context.Context, op core.Op) (int, error) {
	h.queueDepth.Add(1)
	defer h.queueDepth.Add(-1)
	if h.updateWait > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, h.updateWait)
		defer cancel()
	}
	po := &pendingOp{op: op, done: make(chan opResult, 1)}
	h.pendMu.Lock()
	h.pending = append(h.pending, po)
	h.pendMu.Unlock()
	for {
		select {
		case res := <-po.done:
			return res.points, res.err
		case h.updateSlot <- struct{}{}:
			// Leader: run one batch (which may or may not include po if the
			// queue is longer than MaxCoalesce), then re-check for a result.
			h.runBatch()
		case <-ctx.Done():
			if h.withdraw(po) {
				h.shed.Inc()
				return 0, fmt.Errorf("%w: %v", errUpdateShed, ctx.Err())
			}
			// Already claimed by a leader: the op may be applied, so the
			// shed path is no longer safe. Wait for the real result.
			res := <-po.done
			return res.points, res.err
		}
	}
}

// withdraw removes a still-unclaimed op from the queue, reporting whether it
// was found (false means a leader claimed it first).
func (h *Handler) withdraw(po *pendingOp) bool {
	h.pendMu.Lock()
	defer h.pendMu.Unlock()
	for i, q := range h.pending {
		if q == po {
			h.pending = append(h.pending[:i], h.pending[i+1:]...)
			return true
		}
	}
	return false
}

// runBatch claims and applies one coalesced batch. The caller must hold the
// writer slot; runBatch releases it. A batch failure fails every claimed op
// and leaves the published snapshot untouched — readers never observe a
// partial batch, and the whole batch either swaps in atomically or sheds.
func (h *Handler) runBatch() {
	defer func() { <-h.updateSlot }()
	if h.coalesceDelay > 0 {
		// Let a write burst accumulate so one pass absorbs it.
		time.Sleep(h.coalesceDelay)
	}
	h.pendMu.Lock()
	k := len(h.pending)
	if k > h.maxCoalesce {
		k = h.maxCoalesce
	}
	if k == 0 {
		h.pendMu.Unlock()
		return
	}
	batch := make([]*pendingOp, k)
	copy(batch, h.pending[:k])
	rest := copy(h.pending, h.pending[k:])
	for i := rest; i < len(h.pending); i++ {
		h.pending[i] = nil
	}
	h.pending = h.pending[:rest]
	h.pendMu.Unlock()

	h.updateStart.Set(float64(time.Now().UnixNano()) / 1e9)
	defer h.updateStart.Set(0)
	fail := func(err error) {
		for _, po := range batch {
			po.done <- opResult{err: err}
		}
	}

	start := time.Now()
	if err := faultinject.Hit("server.update.coalesce"); err != nil {
		fail(fmt.Errorf("%w: %v", errRebuildFailed, err))
		return
	}
	base := h.snapshot()
	if err := faultinject.Hit("server.update.derive"); err != nil {
		fail(fmt.Errorf("%w: %v", errRebuildFailed, err))
		return
	}
	if h.rebuildHook != nil {
		h.rebuildHook()
	}
	ops := make([]core.Op, len(batch))
	for i, po := range batch {
		ops[i] = po.op
	}
	set := base.diagramSet()
	next, results, err := set.ApplyBatch(ops, h.updateOpts())
	if err != nil {
		fail(fmt.Errorf("%w: %v", errRebuildFailed, err))
		return
	}
	if err := faultinject.Hit("server.update.rebuild"); err != nil {
		fail(fmt.Errorf("%w: %v", errRebuildFailed, err))
		return
	}
	if next != set {
		// At least one op applied: publish one snapshot for the whole batch.
		epoch := base.epoch + 1
		if h.wal != nil {
			// Group commit — the durability barrier. Log only the applied
			// (non-rejected) ops, stamped with the epoch the swap will
			// publish, and fsync once for the whole batch. On failure the
			// batch sheds wholesale before the swap: the published snapshot
			// is untouched, nothing was acked, and the log holds no record
			// of a state that was never served — log and snapshot cannot
			// diverge in either direction.
			applied := make([]core.Op, 0, len(ops))
			for i := range ops {
				if results[i].Err == nil {
					applied = append(applied, ops[i])
				}
			}
			if err := h.wal.Commit(epoch, applied); err != nil {
				fail(fmt.Errorf("%w: wal commit: %v", errRebuildFailed, err))
				return
			}
			h.walCommits.Inc()
			h.walBytes.Set(float64(h.wal.Size()))
		}
		st := stateFromSet(next)
		st.epoch = epoch
		// Hash the canonical bytes into the delta ring before the swap, so a
		// replica that sees the new epoch can always ask for a delta to it.
		h.recordState(st)
		h.mu.Lock()
		h.setState(st)
		h.mu.Unlock()
		h.swaps.Inc()
	}
	h.coalesced.Add(int64(len(batch)))
	h.batchSize.Observe(float64(len(batch)))
	h.rebuildLat.ObserveDuration(time.Since(start))
	for i, po := range batch {
		po.done <- opResult{points: results[i].Points, err: results[i].Err}
	}
	h.maybeCompact()
	h.maybeCheckpoint()
}

// maybeCompact reclaims copy-on-write arena garbage once it crosses the
// configured ratio. Incremental maintenance never rewrites a shared arena in
// place, so deleted and superseded results accumulate as dead entries; left
// alone they grow without bound under sustained churn. The batch leader —
// still holding the writer slot, so no concurrent writer can derive from the
// pre-compaction snapshot — rewrites the arenas in first-use order entirely
// outside the read lock, then publishes the compacted snapshot with one more
// pointer swap. Answers are unchanged (only dead entries are dropped), and
// the point set is identical, so the JSON fragments carry over verbatim.
func (h *Handler) maybeCompact() {
	if h.compactRatio <= 0 {
		return
	}
	base := h.snapshot()
	if base.stored != nil {
		return
	}
	set := base.diagramSet()
	if set.ArenaGarbageRatio() < h.compactRatio {
		return
	}
	start := time.Now()
	next := set.CompactArenas()
	// Compaction drops only dead arena entries: answers — and the canonical
	// persisted bytes — are unchanged, so the epoch carries over.
	st := &state{
		epoch:    base.epoch,
		points:   next.Points,
		quadrant: next.Quadrant,
		global:   next.Global,
		dynamic:  next.Dynamic,
		frags:    base.frags,
	}
	h.mu.Lock()
	h.setState(st)
	h.mu.Unlock()
	h.compactions.Inc()
	h.reg.Histogram("skyserve_compact_seconds",
		"Arena compaction duration in seconds.").ObserveDuration(time.Since(start))
}

// updateOpts assembles the core maintenance options for one batch pass.
func (h *Handler) updateOpts() core.UpdateOptions {
	return core.UpdateOptions{
		MaxDynamicPoints: h.maxDynamic,
		Workers:          h.workers,
		Metrics:          h.reg,
		FullRebuild:      h.fullRebuild,
		ObserveKind: func(kind string, elapsed time.Duration) {
			h.reg.Histogram("skyserve_rebuild_seconds",
				"Update rebuild duration in seconds, by diagram kind (total = whole update).",
				"kind", kind).ObserveDuration(elapsed)
		},
	}
}

// diagramSet views a snapshot as a core.DiagramSet for maintenance.
func (st *state) diagramSet() *core.DiagramSet {
	return &core.DiagramSet{
		Points:   st.points,
		Quadrant: st.quadrant,
		Global:   st.global,
		Dynamic:  st.dynamic,
	}
}

// stateFromSet assembles a publishable snapshot from a maintained set.
func stateFromSet(set *core.DiagramSet) *state {
	return &state{
		points:   set.Points,
		quadrant: set.Quadrant,
		global:   set.Global,
		dynamic:  set.Dynamic,
		frags:    pointFrags(set.Points),
	}
}
