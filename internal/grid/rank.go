package grid

import "math"

// Rank is a dense rank table over one axis's sorted distinct grid values: it
// answers locate (the number of values <= v, i.e. the half-open cell index)
// in O(1) on the fast path instead of a branchy O(log n) binary search.
//
// The layout follows the quantized point-location idea of "Skyline Queries in
// O(1) time?" (arXiv:1709.03949), in the Elias-Fano style: the value range
// [vs[0], vs[n-1]] is cut into B ≈ 4n uniform buckets, and prefix[b] holds a
// monotone count of grid values whose bucket index is < b (exactly the EF
// upper-bits bucket histogram). A query quantizes v to its bucket b with one
// subtract+multiply+truncate and loads the two adjacent counts:
//
//   - prefix[b] == prefix[b+1]: the bucket holds no grid value, so every value
//     <= v is in a strictly lower bucket — the answer is prefix[b]. With ~4
//     buckets per value this is the overwhelmingly common case: two array
//     loads total.
//   - otherwise the bucket is "dirty" (one or more grid lines quantize into
//     it) and the answer is refined by a binary search over just that
//     bucket's value run vs[prefix[b]:prefix[b+1]] — almost always a single
//     value, so the fallback slot costs one extra comparison.
//
// Quantization uses the exact same float expression at build and query time,
// and int((v-lo)*scale) is monotone in v (subtraction and multiplication by a
// positive constant are correctly rounded and order-preserving, truncation of
// non-negative floats is monotone), so a value in a lower bucket is strictly
// below every value of a higher bucket. That makes the prefix counts exact
// rather than approximate.
//
// Boundary behavior matches locate bit for bit (differentially tested and
// fuzzed in rank_test.go):
//
//   - NaN: !(v >= lo) catches every NaN comparison, answer 0 — the documented
//     "NaN lands in cell 0" contract of locate.
//   - v < vs[0] (including -inf): answer 0 via the same guard.
//   - v >= vs[n-1] (including +inf and a query exactly on the last grid
//     line): answer n.
//   - a query exactly on any other grid line quantizes into that value's
//     (dirty) bucket and the in-bucket search applies the <= convention, so
//     on-line queries take the upper/right cell as documented.
//
// Degenerate axes — fewer than two values, NaN or infinite endpoints, zero
// span (all values equal after dedup cannot happen, but a denormal span can
// round scale to +inf) — leave prefix nil and Rank falls back to the binary
// search, preserving exact legacy behavior.
type Rank struct {
	vs     []float64
	prefix []uint32
	lo, hi float64
	scale  float64
}

const (
	// rankBucketsPerValue trades memory (4 bytes per bucket) for the dirty
	// bucket rate; 4x oversampling keeps dirty hits rare on realistic axes.
	rankBucketsPerValue = 4
	// rankMaxBuckets caps the table at 16 MiB of prefix counts no matter how
	// many grid lines an axis has (SubGrid axes are O(n^2)).
	rankMaxBuckets = 1 << 22
)

// NewRank builds the rank table for vs, which must be sorted ascending with
// distinct values (geom.SortedAxis output). The slice is retained, not
// copied. Always returns a usable table; degenerate inputs get a table that
// transparently falls back to binary search.
func NewRank(vs []float64) *Rank {
	r := &Rank{vs: vs}
	n := len(vs)
	if n < 2 {
		return r
	}
	lo, hi := vs[0], vs[n-1]
	span := hi - lo
	if !(span > 0) || math.IsInf(span, 0) {
		return r // NaN endpoints, infinite values, or a zero-width axis
	}
	nb := n * rankBucketsPerValue
	if nb > rankMaxBuckets {
		nb = rankMaxBuckets
	}
	scale := float64(nb) / span
	if !(scale > 0) || math.IsInf(scale, 0) {
		return r // denormal span: quantization would overflow
	}
	r.lo, r.hi, r.scale = lo, hi, scale
	r.prefix = make([]uint32, nb+1)
	for _, v := range vs {
		r.prefix[r.bucketOf(v)+1]++
	}
	for b := 0; b < nb; b++ {
		r.prefix[b+1] += r.prefix[b]
	}
	return r
}

// bucketOf quantizes v ∈ [lo, hi] to a bucket index. The clamps absorb the
// at-most-one-ulp rounding excess of (hi-lo)*scale over the bucket count.
func (r *Rank) bucketOf(v float64) int {
	b := int((v - r.lo) * r.scale)
	if b < 0 {
		b = 0
	}
	if b > len(r.prefix)-2 {
		b = len(r.prefix) - 2
	}
	return b
}

// Rank returns the number of values <= v — exactly locate(vs, v), including
// every NaN/±inf/on-grid-line boundary case. Zero allocations.
func (r *Rank) Rank(v float64) int {
	if r.prefix == nil {
		return locate(r.vs, v)
	}
	if !(v >= r.lo) {
		return 0 // NaN or below the first grid value
	}
	if v >= r.hi {
		return len(r.vs)
	}
	b := r.bucketOf(v)
	lo, hi := r.prefix[b], r.prefix[b+1]
	if lo == hi {
		return int(lo) // clean bucket: no grid value quantizes here
	}
	return int(lo) + locate(r.vs[lo:hi], v)
}

// Dense reports whether the O(1) fast path is active (false only for
// degenerate axes, which use the binary-search fallback).
func (r *Rank) Dense() bool { return r.prefix != nil }
