// Moving-query: continuous skyline queries for a moving user.
//
// A commuter drives across town while their phone keeps a list of
// competitive restaurants (price vs distance-to-me trade-off, both to be
// minimised — here modelled in the diagram's coordinate plane). Without a
// precomputed structure, the app would re-run a skyline query every few
// metres. With the skyline diagram, each polyomino is a *safe zone*: the
// result cannot change while the user stays inside one, so the app computes,
// once per trip leg, the exact positions where the answer will change —
// the diagram-crossing times — and does zero work in between.
//
// This is the continuous-query problem of the paper's related work (Huang
// et al., Cheema et al., §II) solved with the diagram the paper proposes.
package main

import (
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/quaddiag"
	"repro/internal/safezone"
)

func main() {
	// The city's restaurants (two scored attributes).
	pts, err := dataset.Generate(dataset.Config{N: 60, Dim: 2, Dist: dataset.Clustered, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	pts = dataset.GeneralPosition(pts)

	diagram, err := quaddiag.BuildScanning(pts)
	if err != nil {
		log.Fatal(err)
	}

	// One trip leg: drive diagonally across the plane over one time unit.
	trip := safezone.Path{
		Start:    geom.Pt2(-1, 2, 55),
		Velocity: geom.Pt2(-1, 50, -48),
		Duration: 1,
	}
	timeline, err := safezone.ForQuadrant(diagram, trip)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trip from (%.0f, %.0f) to (%.0f, %.0f)\n",
		trip.Start.X(), trip.Start.Y(), trip.At(1).X(), trip.At(1).Y())
	fmt.Printf("the skyline result changes %d times along the way:\n\n", safezone.Changes(timeline))
	for _, iv := range timeline {
		fmt.Printf("  t ∈ [%.3f, %.3f): %2d competitive restaurants %v\n",
			iv.T0, iv.T1, len(iv.IDs), iv.IDs)
	}
	fmt.Println("\nbetween those instants the app does no skyline work at all —")
	fmt.Println("each interval is one safe zone (skyline polyomino) of the diagram.")
}
