package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestUpdateChainMatchesRebuild chains randomized WithInsert/WithDelete
// sequences — the serving write path — and after every step compares the
// incrementally maintained diagram cell-for-cell against a from-scratch
// build of the same point set. Coordinates are drawn from a small integer
// domain, so duplicate coordinates and exact-duplicate locations (the tie
// regime the optimized constructions special-case) occur constantly.
func TestUpdateChainMatchesRebuild(t *testing.T) {
	seeds := []int64{3, 17, 29}
	if testing.Short() {
		seeds = seeds[:1]
	}
	const domain = 10
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			pts := make([]geom.Point, 0, 16)
			nextID := 0
			for i := 0; i < 12; i++ {
				pts = append(pts, geom.Pt2(nextID, float64(rng.Intn(domain)), float64(rng.Intn(domain))))
				nextID++
			}
			cur, err := BuildQuadrant(pts, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for step := 0; step < 40; step++ {
				if len(pts) == 0 || rng.Intn(2) == 0 {
					p := geom.Pt2(nextID, float64(rng.Intn(domain)), float64(rng.Intn(domain)))
					nextID++
					cur, err = cur.WithInsert(p)
					if err != nil {
						t.Fatalf("seed=%d step=%d insert %v: %v", seed, step, p, err)
					}
					pts = append(pts, p)
				} else {
					k := rng.Intn(len(pts))
					id := pts[k].ID
					cur, err = cur.WithDelete(id)
					if err != nil {
						t.Fatalf("seed=%d step=%d delete %d: %v", seed, step, id, err)
					}
					pts = append(pts[:k], pts[k+1:]...)
				}
				fresh, err := BuildQuadrant(pts, Options{})
				if err != nil {
					t.Fatalf("seed=%d step=%d rebuild: %v", seed, step, err)
				}
				if !cur.Cells().Equal(fresh.Cells()) {
					t.Fatalf("CHAIN MISMATCH seed=%d step=%d n=%d: incremental diagram differs from rebuild",
						seed, step, len(pts))
				}
				// Spot-check the query semantics against the oracle too
				// (off-lattice queries; see differential_test.go for the
				// boundary convention).
				q := geom.Pt2(-1, float64(rng.Intn(domain))+0.5, float64(rng.Intn(domain))+0.5)
				if got, want := sortedIDs32(cur.Query(q)), sortedIDsPts(QuadrantSkyline(pts, q)); !equalInts(got, want) {
					t.Fatalf("ORACLE MISMATCH seed=%d step=%d q=(%g,%g): diagram=%v oracle=%v",
						seed, step, q.X(), q.Y(), got, want)
				}
			}
		})
	}
}

// TestUpdateChainDuplicateCoordinates forces the hardest tie case: inserts
// that land exactly on existing points' locations, then deletes that peel
// coincident twins apart one at a time.
func TestUpdateChainDuplicateCoordinates(t *testing.T) {
	base := []geom.Point{
		geom.Pt2(0, 2, 8), geom.Pt2(1, 5, 5), geom.Pt2(2, 8, 2),
	}
	cur, err := BuildQuadrant(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pts := append([]geom.Point(nil), base...)
	// Pile exact duplicates onto every base location.
	for i, b := range base {
		p := geom.Pt2(10+i, b.X(), b.Y())
		cur, err = cur.WithInsert(p)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, p)
		fresh, err := BuildQuadrant(pts, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !cur.Cells().Equal(fresh.Cells()) {
			t.Fatalf("after duplicating %v: incremental differs from rebuild", b)
		}
	}
	// Peel the originals off again.
	for _, b := range base {
		cur, err = cur.WithDelete(b.ID)
		if err != nil {
			t.Fatal(err)
		}
		for k, p := range pts {
			if p.ID == b.ID {
				pts = append(pts[:k], pts[k+1:]...)
				break
			}
		}
		fresh, err := BuildQuadrant(pts, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !cur.Cells().Equal(fresh.Cells()) {
			t.Fatalf("after deleting %d: incremental differs from rebuild", b.ID)
		}
	}
}

// chainOpts keeps the dynamic diagram alive for every chain below: the point
// counts stay far under the threshold, so every op maintains all three kinds.
var chainOpts = UpdateOptions{MaxDynamicPoints: 64}

// assertSetMatchesRebuild compares an incrementally maintained DiagramSet
// against a from-scratch BuildSet of the same points — structurally
// (cell-for-cell on all three kinds via DiagramSet.Equal) and semantically
// (spot queries against the from-scratch skyline oracles). ctx is interpolated
// into failures so a randomized chain logs its seed and step.
func assertSetMatchesRebuild(t *testing.T, set *DiagramSet, rng *rand.Rand, domain int, ctx string) {
	t.Helper()
	fresh, err := BuildSet(set.Points, chainOpts)
	if err != nil {
		t.Fatalf("%s: rebuild: %v", ctx, err)
	}
	if !set.Equal(fresh) {
		kinds := ""
		if !set.Quadrant.Equal(fresh.Quadrant) {
			kinds += " quadrant"
		}
		if !set.Global.Equal(fresh.Global) {
			kinds += " global"
		}
		if (set.Dynamic == nil) != (fresh.Dynamic == nil) ||
			(set.Dynamic != nil && !set.Dynamic.Equal(fresh.Dynamic)) {
			kinds += " dynamic"
		}
		t.Fatalf("CHAIN MISMATCH %s n=%d: incremental differs from rebuild in:%s",
			ctx, len(set.Points), kinds)
	}
	// Semantic spot checks. Quadrant/global queries sit on half-integers (off
	// the data's coordinate lines); the dynamic query uses the +0.3 offset of
	// TestDifferentialDynamic, off the arrangement's half-integer lines.
	q := geom.Pt2(-1, float64(rng.Intn(domain))+0.5, float64(rng.Intn(domain))+0.5)
	if got, want := sortedIDs32(set.Quadrant.Query(q)), sortedIDsPts(QuadrantSkyline(set.Points, q)); !equalInts(got, want) {
		t.Fatalf("QUADRANT ORACLE MISMATCH %s q=(%g,%g): diagram=%v oracle=%v", ctx, q.X(), q.Y(), got, want)
	}
	if got, want := sortedIDs32(set.Global.Query(q)), sortedIDsPts(GlobalSkyline(set.Points, q)); !equalInts(got, want) {
		t.Fatalf("GLOBAL ORACLE MISMATCH %s q=(%g,%g): diagram=%v oracle=%v", ctx, q.X(), q.Y(), got, want)
	}
	if set.Dynamic != nil {
		dq := geom.Pt2(-1, float64(rng.Intn(domain))+0.3, float64(rng.Intn(domain))+0.3)
		if got, want := sortedIDs32(set.Dynamic.Query(dq)), sortedIDsPts(DynamicSkyline(set.Points, dq)); !equalInts(got, want) {
			t.Fatalf("DYNAMIC ORACLE MISMATCH %s q=(%g,%g): diagram=%v oracle=%v", ctx, dq.X(), dq.Y(), got, want)
		}
	}
}

// randomOp draws the next chain op: deletes of random live ids, inserts drawn
// from the small lattice, biased toward the tie-heavy cases — exact duplicates
// of live locations and boundary coordinates (domain edges and points outside
// the current bounding box), the regimes where incremental carry decisions
// are most fragile.
func randomOp(rng *rand.Rand, pts []geom.Point, domain int, nextID *int) Op {
	if len(pts) > 0 && rng.Intn(2) == 1 {
		return DeleteOp(pts[rng.Intn(len(pts))].ID)
	}
	x, y := float64(rng.Intn(domain)), float64(rng.Intn(domain))
	switch rng.Intn(4) {
	case 0: // exact duplicate of a live location
		if len(pts) > 0 {
			b := pts[rng.Intn(len(pts))]
			x, y = b.X(), b.Y()
		}
	case 1: // boundary: domain edges, or just outside the box
		edges := []float64{0, float64(domain - 1), -1, float64(domain)}
		x, y = edges[rng.Intn(len(edges))], edges[rng.Intn(len(edges))]
	}
	p := geom.Pt2(*nextID, x, y)
	*nextID++
	return InsertOp(p)
}

// TestUpdateChainAllKindsMatchesRebuild is the full differential form of the
// chain test: randomized mixed insert/delete sequences advanced through
// DiagramSet.Apply, with ALL THREE diagram kinds compared against a
// from-scratch rebuild after EVERY op. The failure messages carry the seed and
// step so any mismatch is replayable.
func TestUpdateChainAllKindsMatchesRebuild(t *testing.T) {
	seeds := []int64{5, 23, 41}
	steps := 24
	if testing.Short() {
		seeds = seeds[:1]
		steps = 12
	}
	const domain = 8
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			pts := make([]geom.Point, 0, 16)
			nextID := 0
			for i := 0; i < 8; i++ {
				pts = append(pts, geom.Pt2(nextID, float64(rng.Intn(domain)), float64(rng.Intn(domain))))
				nextID++
			}
			set, err := BuildSet(pts, chainOpts)
			if err != nil {
				t.Fatal(err)
			}
			for step := 0; step < steps; step++ {
				op := randomOp(rng, set.Points, domain, &nextID)
				next, err := set.Apply(op, chainOpts)
				if err != nil {
					t.Fatalf("seed=%d step=%d %s: %v", seed, step, op, err)
				}
				set = next
				assertSetMatchesRebuild(t, set, rng, domain,
					fmt.Sprintf("seed=%d step=%d op=%s", seed, step, op))
			}
		})
	}
}

// TestUpdateChainAllKindsDuplicatePile repeats the coincident-twin pile test
// for the full set: exact duplicates stacked on every base location, then the
// originals peeled off, with every kind checked against a rebuild at each op.
func TestUpdateChainAllKindsDuplicatePile(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	base := []geom.Point{
		geom.Pt2(0, 2, 6), geom.Pt2(1, 4, 4), geom.Pt2(2, 6, 2),
	}
	set, err := BuildSet(append([]geom.Point(nil), base...), chainOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range base {
		set, err = set.Apply(InsertOp(geom.Pt2(10+i, b.X(), b.Y())), chainOpts)
		if err != nil {
			t.Fatalf("duplicating %v: %v", b, err)
		}
		assertSetMatchesRebuild(t, set, rng, 8, fmt.Sprintf("after duplicating %v", b))
	}
	for _, b := range base {
		set, err = set.Apply(DeleteOp(b.ID), chainOpts)
		if err != nil {
			t.Fatalf("deleting %d: %v", b.ID, err)
		}
		assertSetMatchesRebuild(t, set, rng, 8, fmt.Sprintf("after deleting %d", b.ID))
	}
}

// TestUpdateChainDynamicThreshold drags the point count back and forth across
// MaxDynamicPoints: growing past it must drop the dynamic diagram (nil),
// shrinking back under it must rebuild one, and both transitions must leave
// every maintained kind rebuild-equal.
func TestUpdateChainDynamicThreshold(t *testing.T) {
	opts := UpdateOptions{MaxDynamicPoints: 6}
	rng := rand.New(rand.NewSource(7))
	pts := make([]geom.Point, 0, 10)
	for i := 0; i < 5; i++ {
		pts = append(pts, geom.Pt2(i, float64(rng.Intn(8)), float64(rng.Intn(8))))
	}
	set, err := BuildSet(pts, opts)
	if err != nil {
		t.Fatal(err)
	}
	if set.Dynamic == nil {
		t.Fatal("expected dynamic diagram under the threshold")
	}
	nextID := 5
	check := func(ctx string, wantDynamic bool) {
		t.Helper()
		if (set.Dynamic != nil) != wantDynamic {
			t.Fatalf("%s: dynamic present=%v, want %v", ctx, set.Dynamic != nil, wantDynamic)
		}
		fresh, err := BuildSet(set.Points, opts)
		if err != nil {
			t.Fatalf("%s: rebuild: %v", ctx, err)
		}
		if !set.Equal(fresh) {
			t.Fatalf("%s: incremental differs from rebuild", ctx)
		}
	}
	// Grow to 8 points: the dynamic diagram disappears at 7.
	for len(set.Points) < 8 {
		set, err = set.Apply(InsertOp(geom.Pt2(nextID, float64(rng.Intn(8)), float64(rng.Intn(8)))), opts)
		if err != nil {
			t.Fatal(err)
		}
		nextID++
		check(fmt.Sprintf("grow to n=%d", len(set.Points)), len(set.Points) <= 6)
	}
	// Shrink back to 5: crossing under the threshold must rebuild it.
	for len(set.Points) > 5 {
		set, err = set.Apply(DeleteOp(set.Points[0].ID), opts)
		if err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("shrink to n=%d", len(set.Points)), len(set.Points) <= 6)
	}
}

// TestApplyBatchMatchesSequential is the coalescing equivalence check at the
// core layer: folding a batch through ApplyBatch must land on exactly the
// same diagrams as applying the surviving ops one at a time, with rejected
// ops (duplicate inserts, unknown deletes) attributed per-op and skipped
// rather than poisoning their neighbours.
func TestApplyBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := []geom.Point{
		geom.Pt2(0, 1, 7), geom.Pt2(1, 4, 4), geom.Pt2(2, 7, 1),
	}
	set, err := BuildSet(pts, chainOpts)
	if err != nil {
		t.Fatal(err)
	}
	ops := []Op{
		InsertOp(geom.Pt2(3, 2, 2)),
		InsertOp(geom.Pt2(3, 5, 5)), // rejected: duplicate id within the batch
		DeleteOp(1),
		DeleteOp(42), // rejected: unknown id
		InsertOp(geom.Pt2(4, 4, 4)),
		DeleteOp(1), // rejected: id 1 already deleted earlier in the batch
		InsertOp(geom.Pt2(5, 0, 0)),
		DeleteOp(3),
	}
	batched, results, err := set.ApplyBatch(ops, chainOpts)
	if err != nil {
		t.Fatal(err)
	}
	wantRejected := map[int]bool{1: true, 3: true, 5: true}
	seq := set
	for i, op := range ops {
		if wantRejected[i] {
			if !errors.Is(results[i].Err, ErrRejected) {
				t.Fatalf("op %d (%s): want ErrRejected, got %v", i, op, results[i].Err)
			}
			continue
		}
		if results[i].Err != nil {
			t.Fatalf("op %d (%s): unexpected error %v", i, op, results[i].Err)
		}
		seq, err = seq.Apply(op, chainOpts)
		if err != nil {
			t.Fatalf("sequential op %d (%s): %v", i, op, err)
		}
		if results[i].Points != len(seq.Points) {
			t.Fatalf("op %d (%s): batch reported %d points, sequential has %d",
				i, op, results[i].Points, len(seq.Points))
		}
	}
	if !batched.Equal(seq) {
		t.Fatal("batched result differs from sequential application")
	}
	assertSetMatchesRebuild(t, batched, rng, 8, "after batch")

	// An all-rejected batch returns the receiver itself — the server relies
	// on the pointer identity to skip the snapshot swap.
	allRej, results, err := set.ApplyBatch([]Op{DeleteOp(42), InsertOp(geom.Pt2(0, 1, 1))}, chainOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !errors.Is(r.Err, ErrRejected) {
			t.Fatalf("all-rejected batch op %d: want ErrRejected, got %v", i, r.Err)
		}
	}
	if allRej != set {
		t.Fatal("all-rejected batch must return the receiver unchanged")
	}
}
