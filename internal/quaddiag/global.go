package quaddiag

import (
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/polyomino"
)

// GlobalDiagram is the skyline diagram for global skyline queries: per cell,
// the union of the four quadrant skylines (Definition 3). The union is
// disjoint because every point belongs to exactly one quadrant of any query
// interior to the cell.
type GlobalDiagram struct {
	Points    []geom.Point
	Grid      *grid.Grid
	Quadrants [4]*Diagram // index = reflection mask; cells already remapped
	cells     [][]int32
	rows      int
}

// BuildGlobal computes the global skyline diagram by running the given
// quadrant construction on the four reflections of the input (Section IV:
// "global skyline can be simply computed by taking a union of all quadrant
// skylines"). Reflecting axis a maps quadrant cell column i to column
// cols-1-i, so the four per-cell results line up on the original grid.
func BuildGlobal(pts []geom.Point, alg Algorithm) (*GlobalDiagram, error) {
	if err := require2D(pts); err != nil {
		return nil, err
	}
	g := grid.NewGrid(pts)
	gd := &GlobalDiagram{
		Points: pts,
		Grid:   g,
		cells:  make([][]int32, g.Cols()*g.Rows()),
		rows:   g.Rows(),
	}
	for mask := 0; mask < 4; mask++ {
		rd, err := Build(geom.Reflect(pts, mask), alg)
		if err != nil {
			return nil, err
		}
		gd.Quadrants[mask] = remap(rd, pts, g, mask)
	}
	for i := 0; i < g.Cols(); i++ {
		for j := 0; j < g.Rows(); j++ {
			merged := gd.Quadrants[0].Cell(i, j)
			for mask := 1; mask < 4; mask++ {
				merged = mergeDisjoint(merged, gd.Quadrants[mask].Cell(i, j))
			}
			gd.cells[i*gd.rows+j] = merged
		}
	}
	return gd, nil
}

// remap rebuilds a reflected quadrant diagram on the original grid: cell
// (i, j) of the result holds the reflected diagram's cell, with each axis
// index flipped when that axis was reflected.
func remap(rd *Diagram, pts []geom.Point, g *grid.Grid, mask int) *Diagram {
	out := newDiagram(pts, g)
	cols, rows := g.Cols(), g.Rows()
	for i := 0; i < cols; i++ {
		for j := 0; j < rows; j++ {
			ri, rj := i, j
			if mask&1 != 0 {
				ri = cols - 1 - i
			}
			if mask&2 != 0 {
				rj = rows - 1 - j
			}
			out.setCell(i, j, rd.Cell(ri, rj))
		}
	}
	return out
}

// mergeDisjoint merges two ascending id lists known to be disjoint.
func mergeDisjoint(a, b []int32) []int32 {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]int32, 0, len(a)+len(b))
	ai, bi := 0, 0
	for ai < len(a) && bi < len(b) {
		if a[ai] < b[bi] {
			out = append(out, a[ai])
			ai++
		} else {
			out = append(out, b[bi])
			bi++
		}
	}
	out = append(out, a[ai:]...)
	out = append(out, b[bi:]...)
	return out
}

// Cell returns the global skyline ids of cell (i, j), ascending.
func (gd *GlobalDiagram) Cell(i, j int) []int32 { return gd.cells[i*gd.rows+j] }

// Query answers a global skyline query by point location.
func (gd *GlobalDiagram) Query(q geom.Point) []int32 {
	i, j := gd.Grid.Locate(q)
	return gd.Cell(i, j)
}

// QuadrantCell returns the quadrant-mask component of cell (i, j).
func (gd *GlobalDiagram) QuadrantCell(mask, i, j int) []int32 {
	return gd.Quadrants[mask].Cell(i, j)
}

// Merge groups the global diagram's cells into polyominoes. Note that the
// global diagram's polyominoes are generally finer than the quadrant
// diagram's: a cell boundary can change any of the four quadrant results.
func (gd *GlobalDiagram) Merge() (*polyomino.Partition, error) {
	return polyomino.MergeCells(gd.Grid.Cols(), gd.Grid.Rows(), gd.Cell)
}
