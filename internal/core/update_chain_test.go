package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestUpdateChainMatchesRebuild chains randomized WithInsert/WithDelete
// sequences — the serving write path — and after every step compares the
// incrementally maintained diagram cell-for-cell against a from-scratch
// build of the same point set. Coordinates are drawn from a small integer
// domain, so duplicate coordinates and exact-duplicate locations (the tie
// regime the optimized constructions special-case) occur constantly.
func TestUpdateChainMatchesRebuild(t *testing.T) {
	seeds := []int64{3, 17, 29}
	if testing.Short() {
		seeds = seeds[:1]
	}
	const domain = 10
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			pts := make([]geom.Point, 0, 16)
			nextID := 0
			for i := 0; i < 12; i++ {
				pts = append(pts, geom.Pt2(nextID, float64(rng.Intn(domain)), float64(rng.Intn(domain))))
				nextID++
			}
			cur, err := BuildQuadrant(pts, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for step := 0; step < 40; step++ {
				if len(pts) == 0 || rng.Intn(2) == 0 {
					p := geom.Pt2(nextID, float64(rng.Intn(domain)), float64(rng.Intn(domain)))
					nextID++
					cur, err = cur.WithInsert(p)
					if err != nil {
						t.Fatalf("seed=%d step=%d insert %v: %v", seed, step, p, err)
					}
					pts = append(pts, p)
				} else {
					k := rng.Intn(len(pts))
					id := pts[k].ID
					cur, err = cur.WithDelete(id)
					if err != nil {
						t.Fatalf("seed=%d step=%d delete %d: %v", seed, step, id, err)
					}
					pts = append(pts[:k], pts[k+1:]...)
				}
				fresh, err := BuildQuadrant(pts, Options{})
				if err != nil {
					t.Fatalf("seed=%d step=%d rebuild: %v", seed, step, err)
				}
				if !cur.Cells().Equal(fresh.Cells()) {
					t.Fatalf("CHAIN MISMATCH seed=%d step=%d n=%d: incremental diagram differs from rebuild",
						seed, step, len(pts))
				}
				// Spot-check the query semantics against the oracle too
				// (off-lattice queries; see differential_test.go for the
				// boundary convention).
				q := geom.Pt2(-1, float64(rng.Intn(domain))+0.5, float64(rng.Intn(domain))+0.5)
				if got, want := sortedIDs32(cur.Query(q)), sortedIDsPts(QuadrantSkyline(pts, q)); !equalInts(got, want) {
					t.Fatalf("ORACLE MISMATCH seed=%d step=%d q=(%g,%g): diagram=%v oracle=%v",
						seed, step, q.X(), q.Y(), got, want)
				}
			}
		})
	}
}

// TestUpdateChainDuplicateCoordinates forces the hardest tie case: inserts
// that land exactly on existing points' locations, then deletes that peel
// coincident twins apart one at a time.
func TestUpdateChainDuplicateCoordinates(t *testing.T) {
	base := []geom.Point{
		geom.Pt2(0, 2, 8), geom.Pt2(1, 5, 5), geom.Pt2(2, 8, 2),
	}
	cur, err := BuildQuadrant(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pts := append([]geom.Point(nil), base...)
	// Pile exact duplicates onto every base location.
	for i, b := range base {
		p := geom.Pt2(10+i, b.X(), b.Y())
		cur, err = cur.WithInsert(p)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, p)
		fresh, err := BuildQuadrant(pts, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !cur.Cells().Equal(fresh.Cells()) {
			t.Fatalf("after duplicating %v: incremental differs from rebuild", b)
		}
	}
	// Peel the originals off again.
	for _, b := range base {
		cur, err = cur.WithDelete(b.ID)
		if err != nil {
			t.Fatal(err)
		}
		for k, p := range pts {
			if p.ID == b.ID {
				pts = append(pts[:k], pts[k+1:]...)
				break
			}
		}
		fresh, err := BuildQuadrant(pts, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !cur.Cells().Equal(fresh.Cells()) {
			t.Fatalf("after deleting %d: incremental differs from rebuild", b.ID)
		}
	}
}
