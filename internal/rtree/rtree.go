// Package rtree provides an in-memory R-tree over points, bulk-loaded with
// the Sort-Tile-Recursive (STR) packing algorithm, plus the two classic
// query algorithms the skyline literature runs on it:
//
//   - BBS — branch-and-bound skyline (Papadias et al.), the standard
//     from-scratch skyline evaluator used as the query-time comparator for
//     precomputation approaches like the skyline diagram (experiment E8).
//   - NearestNeighbor — best-first kNN, used by the Voronoi side of the
//     paper's analogy.
//
// The tree is static (bulk-loaded once), which matches both use cases and
// keeps the structure simple and cache-friendly.
package rtree

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// DefaultFanout is the node capacity used when NewSTR is given fanout <= 1.
const DefaultFanout = 16

// MBR is a minimum bounding rectangle, closed on both ends.
type MBR struct {
	Lo, Hi []float64
}

func (m MBR) contains(p geom.Point) bool {
	for i := range m.Lo {
		if p.Coords[i] < m.Lo[i] || p.Coords[i] > m.Hi[i] {
			return false
		}
	}
	return true
}

// minDistL1 is the L1 distance from the origin-corner metric BBS orders by:
// the sum of the rectangle's lower coordinates (for points, the coordinate
// sum). Entries with smaller minDistL1 are expanded first, which guarantees
// a point is popped only after every point that could dominate it.
func (m MBR) minDistL1() float64 {
	var s float64
	for _, v := range m.Lo {
		s += v
	}
	return s
}

// minDist2 is the squared Euclidean distance from q to the rectangle.
func (m MBR) minDist2(q geom.Point) float64 {
	var s float64
	for i := range m.Lo {
		v := q.Coords[i]
		switch {
		case v < m.Lo[i]:
			d := m.Lo[i] - v
			s += d * d
		case v > m.Hi[i]:
			d := v - m.Hi[i]
			s += d * d
		}
	}
	return s
}

type node struct {
	mbr      MBR
	children []*node      // nil for leaves
	points   []geom.Point // nil for internal nodes
}

// Tree is a static, STR-packed R-tree.
type Tree struct {
	root   *node
	dim    int
	size   int
	height int
	fanout int
}

// NewSTR bulk-loads a tree with Sort-Tile-Recursive packing: points are
// sorted by the first axis, sliced into vertical runs, each run sorted by
// the next axis, recursively, so that leaves tile space with low overlap.
func NewSTR(pts []geom.Point, fanout int) (*Tree, error) {
	if fanout <= 1 {
		fanout = DefaultFanout
	}
	if len(pts) == 0 {
		return &Tree{dim: 0, fanout: fanout}, nil
	}
	dim := pts[0].Dim()
	for _, p := range pts {
		if p.Dim() != dim {
			return nil, fmt.Errorf("rtree: mixed dimensions (%d and %d)", dim, p.Dim())
		}
	}
	work := make([]geom.Point, len(pts))
	copy(work, pts)
	leaves := packLeaves(work, dim, fanout)
	height := 1
	level := leaves
	for len(level) > 1 {
		level = packNodes(level, dim, fanout)
		height++
	}
	return &Tree{root: level[0], dim: dim, size: len(pts), height: height, fanout: fanout}, nil
}

// packLeaves tiles the sorted points into leaf nodes of up to fanout points.
func packLeaves(pts []geom.Point, dim, fanout int) []*node {
	groups := strTile(pts, dim, 0, fanout, func(a, b geom.Point, axis int) bool {
		if a.Coords[axis] != b.Coords[axis] {
			return a.Coords[axis] < b.Coords[axis]
		}
		return a.ID < b.ID
	})
	leaves := make([]*node, 0, len(groups))
	for _, g := range groups {
		n := &node{points: g}
		n.mbr = pointsMBR(g, dim)
		leaves = append(leaves, n)
	}
	return leaves
}

// strTile recursively slices items into runs along successive axes so each
// final group has at most fanout members.
func strTile(pts []geom.Point, dim, axis, fanout int, less func(a, b geom.Point, axis int) bool) [][]geom.Point {
	if len(pts) <= fanout {
		return [][]geom.Point{pts}
	}
	sort.Slice(pts, func(i, j int) bool { return less(pts[i], pts[j], axis) })
	if axis == dim-1 {
		var out [][]geom.Point
		for i := 0; i < len(pts); i += fanout {
			end := i + fanout
			if end > len(pts) {
				end = len(pts)
			}
			out = append(out, pts[i:end:end])
		}
		return out
	}
	// Number of slabs: ceil((n/fanout)^(1/(remaining axes))).
	numGroups := (len(pts) + fanout - 1) / fanout
	slabs := int(math.Ceil(math.Pow(float64(numGroups), 1/float64(dim-axis))))
	if slabs < 1 {
		slabs = 1
	}
	per := (len(pts) + slabs - 1) / slabs
	var out [][]geom.Point
	for i := 0; i < len(pts); i += per {
		end := i + per
		if end > len(pts) {
			end = len(pts)
		}
		out = append(out, strTile(pts[i:end:end], dim, axis+1, fanout, less)...)
	}
	return out
}

func packNodes(level []*node, dim, fanout int) []*node {
	sort.Slice(level, func(i, j int) bool { return level[i].mbr.Lo[0] < level[j].mbr.Lo[0] })
	var out []*node
	for i := 0; i < len(level); i += fanout {
		end := i + fanout
		if end > len(level) {
			end = len(level)
		}
		n := &node{children: level[i:end:end]}
		n.mbr = childrenMBR(n.children, dim)
		out = append(out, n)
	}
	return out
}

func pointsMBR(pts []geom.Point, dim int) MBR {
	m := MBR{Lo: make([]float64, dim), Hi: make([]float64, dim)}
	for i := range m.Lo {
		m.Lo[i], m.Hi[i] = math.Inf(1), math.Inf(-1)
	}
	for _, p := range pts {
		for i, v := range p.Coords {
			m.Lo[i] = math.Min(m.Lo[i], v)
			m.Hi[i] = math.Max(m.Hi[i], v)
		}
	}
	return m
}

func childrenMBR(children []*node, dim int) MBR {
	m := MBR{Lo: make([]float64, dim), Hi: make([]float64, dim)}
	for i := range m.Lo {
		m.Lo[i], m.Hi[i] = math.Inf(1), math.Inf(-1)
	}
	for _, c := range children {
		for i := range m.Lo {
			m.Lo[i] = math.Min(m.Lo[i], c.mbr.Lo[i])
			m.Hi[i] = math.Max(m.Hi[i], c.mbr.Hi[i])
		}
	}
	return m
}

// Size returns the number of indexed points.
func (t *Tree) Size() int { return t.size }

// Height returns the number of levels (0 for an empty tree).
func (t *Tree) Height() int { return t.height }

// RangeSearch returns the points inside the closed rectangle [lo, hi].
func (t *Tree) RangeSearch(lo, hi []float64) ([]geom.Point, error) {
	if t.root == nil {
		return nil, nil
	}
	if len(lo) != t.dim || len(hi) != t.dim {
		return nil, fmt.Errorf("rtree: range dimension %d/%d, tree dimension %d", len(lo), len(hi), t.dim)
	}
	q := MBR{Lo: lo, Hi: hi}
	var out []geom.Point
	var walk func(n *node)
	walk = func(n *node) {
		if !overlaps(n.mbr, q) {
			return
		}
		if n.points != nil {
			for _, p := range n.points {
				if q.contains(p) {
					out = append(out, p)
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

func overlaps(a, b MBR) bool {
	for i := range a.Lo {
		if a.Hi[i] < b.Lo[i] || b.Hi[i] < a.Lo[i] {
			return false
		}
	}
	return true
}

// --- best-first priority queue ----------------------------------------------

type pqItem struct {
	key   float64
	node  *node      // nil when the item is a point
	point geom.Point // valid when node == nil
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].key < q[j].key }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	it := old[len(old)-1]
	*q = old[:len(old)-1]
	return it
}

// BBS computes the skyline with branch-and-bound: expand entries in
// ascending L1 distance of their lower corner; an entry is pruned if its
// lower corner is dominated by an already-accepted skyline point, and a
// popped point is a skyline point iff it is not dominated. Visits only the
// nodes that can contain skyline points. Result in ascending ID order.
func (t *Tree) BBS() []geom.Point {
	if t.root == nil {
		return nil
	}
	var sky []geom.Point
	h := &pq{{key: t.root.mbr.minDistL1(), node: t.root}}
	heap.Init(h)
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if it.node == nil {
			if !dominatedBy(sky, it.point) {
				sky = append(sky, it.point)
			}
			continue
		}
		if dominatedByCoords(sky, it.node.mbr.Lo) {
			continue
		}
		if it.node.points != nil {
			for _, p := range it.node.points {
				if !dominatedBy(sky, p) {
					heap.Push(h, pqItem{key: pointL1(p), point: p})
				}
			}
			continue
		}
		for _, c := range it.node.children {
			if !dominatedByCoords(sky, c.mbr.Lo) {
				heap.Push(h, pqItem{key: c.mbr.minDistL1(), node: c})
			}
		}
	}
	sort.Slice(sky, func(i, j int) bool { return sky[i].ID < sky[j].ID })
	return sky
}

func pointL1(p geom.Point) float64 {
	var s float64
	for _, v := range p.Coords {
		s += v
	}
	return s
}

func dominatedBy(sky []geom.Point, p geom.Point) bool {
	for _, s := range sky {
		if geom.Dominates(s, p) {
			return true
		}
	}
	return false
}

// dominatedByCoords prunes an MBR when an accepted skyline point dominates
// every possible point inside: s <= corner on all axes AND strictly below on
// at least one. Without the strictness requirement a box whose corner
// coincides with s could hide an exact duplicate of s, which is
// incomparable and belongs in the skyline.
func dominatedByCoords(sky []geom.Point, lo []float64) bool {
	for _, s := range sky {
		all, strict := true, false
		for i, v := range s.Coords {
			if v > lo[i] {
				all = false
				break
			}
			if v < lo[i] {
				strict = true
			}
		}
		if all && strict {
			return true
		}
	}
	return false
}

// BBSConstrained computes the skyline of the points strictly greater than
// lo on every axis — a quadrant skyline query evaluated directly on the
// shared tree, without materialising the quadrant. Subtrees with no point
// beyond lo on some axis are pruned; ordering and dominance pruning work as
// in BBS, with node keys taken at the quadrant-clipped lower corner.
func (t *Tree) BBSConstrained(lo []float64) ([]geom.Point, error) {
	if t.root == nil {
		return nil, nil
	}
	if len(lo) != t.dim {
		return nil, fmt.Errorf("rtree: constraint dimension %d, tree dimension %d", len(lo), t.dim)
	}
	inQuadrant := func(p geom.Point) bool {
		for i, v := range lo {
			if p.Coords[i] <= v {
				return false
			}
		}
		return true
	}
	reachable := func(m MBR) bool {
		for i, v := range lo {
			if m.Hi[i] <= v {
				return false
			}
		}
		return true
	}
	clippedKey := func(m MBR) float64 {
		var s float64
		for i := range m.Lo {
			s += math.Max(m.Lo[i], lo[i])
		}
		return s
	}
	var sky []geom.Point
	h := &pq{{key: clippedKey(t.root.mbr), node: t.root}}
	heap.Init(h)
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if it.node == nil {
			if !dominatedBy(sky, it.point) {
				sky = append(sky, it.point)
			}
			continue
		}
		if !reachable(it.node.mbr) || dominatedClipped(sky, it.node.mbr, lo) {
			continue
		}
		if it.node.points != nil {
			for _, p := range it.node.points {
				if inQuadrant(p) && !dominatedBy(sky, p) {
					heap.Push(h, pqItem{key: pointL1(p), point: p})
				}
			}
			continue
		}
		for _, c := range it.node.children {
			if reachable(c.mbr) && !dominatedClipped(sky, c.mbr, lo) {
				heap.Push(h, pqItem{key: clippedKey(c.mbr), node: c})
			}
		}
	}
	sort.Slice(sky, func(i, j int) bool { return sky[i].ID < sky[j].ID })
	return sky, nil
}

// dominatedClipped prunes an MBR whose quadrant-clipped lower corner is
// strictly dominated by an accepted skyline point (same strictness rule as
// dominatedByCoords).
func dominatedClipped(sky []geom.Point, m MBR, lo []float64) bool {
	for _, s := range sky {
		all, strict := true, false
		for i, v := range s.Coords {
			c := math.Max(m.Lo[i], lo[i])
			if v > c {
				all = false
				break
			}
			if v < c {
				strict = true
			}
		}
		if all && strict {
			return true
		}
	}
	return false
}

// NearestNeighbors returns the k nearest points to q, closest first, via
// best-first search.
func (t *Tree) NearestNeighbors(q geom.Point, k int) ([]geom.Point, error) {
	if t.root == nil || k <= 0 {
		return nil, nil
	}
	if q.Dim() != t.dim {
		return nil, fmt.Errorf("rtree: query dimension %d, tree dimension %d", q.Dim(), t.dim)
	}
	h := &pq{{key: t.root.mbr.minDist2(q), node: t.root}}
	heap.Init(h)
	var out []geom.Point
	for h.Len() > 0 && len(out) < k {
		it := heap.Pop(h).(pqItem)
		if it.node == nil {
			out = append(out, it.point)
			continue
		}
		if it.node.points != nil {
			for _, p := range it.node.points {
				heap.Push(h, pqItem{key: dist2(p, q), point: p})
			}
			continue
		}
		for _, c := range it.node.children {
			heap.Push(h, pqItem{key: c.mbr.minDist2(q), node: c})
		}
	}
	return out, nil
}

func dist2(a, b geom.Point) float64 {
	var s float64
	for i := range a.Coords {
		d := a.Coords[i] - b.Coords[i]
		s += d * d
	}
	return s
}

// Stats describes the packed tree, for tests and diagnostics.
type Stats struct {
	Nodes, Leaves, MaxLeafSize int
}

// ComputeStats walks the tree.
func (t *Tree) ComputeStats() Stats {
	var st Stats
	if t.root == nil {
		return st
	}
	var walk func(n *node)
	walk = func(n *node) {
		st.Nodes++
		if n.points != nil {
			st.Leaves++
			if len(n.points) > st.MaxLeafSize {
				st.MaxLeafSize = len(n.points)
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return st
}
