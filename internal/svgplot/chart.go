package svgplot

import (
	"fmt"
	"io"
	"math"
)

// Series is one polyline of a chart.
type Series struct {
	Label string
	X, Y  []float64
}

// ChartOptions configures WriteLineChart.
type ChartOptions struct {
	Title, XLabel, YLabel string
	LogY                  bool // log10 y axis, the usual scale for runtime figures
	W, H                  int  // pixel size; zero selects 720x480
}

var strokePalette = []string{
	"#2563eb", "#16a34a", "#dc2626", "#d97706", "#9333ea",
	"#0891b2", "#be185d", "#4d7c0f", "#7c3aed", "#b91c1c",
	"#0d9488", "#a16207",
}

// WriteLineChart renders series as an SVG line chart — the form the paper's
// runtime figures take. Axes get ~5 ticks; a log y-axis uses powers of 10.
func WriteLineChart(w io.Writer, opt ChartOptions, series []Series) error {
	if len(series) == 0 {
		return fmt.Errorf("svgplot: chart with no series")
	}
	if opt.W == 0 {
		opt.W = 720
	}
	if opt.H == 0 {
		opt.H = 480
	}
	const (
		marginL = 70
		marginR = 160
		marginT = 40
		marginB = 50
	)
	plotW := float64(opt.W - marginL - marginR)
	plotH := float64(opt.H - marginT - marginB)

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			y := s.Y[i]
			if opt.LogY && y <= 0 {
				continue
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
	}
	if math.IsInf(minX, 1) {
		return fmt.Errorf("svgplot: chart has no drawable points")
	}
	if minX == maxX {
		minX, maxX = minX-1, maxX+1
	}
	ty := func(y float64) float64 {
		if opt.LogY {
			return math.Log10(y)
		}
		return y
	}
	loY, hiY := ty(minY), ty(maxY)
	if loY == hiY {
		loY, hiY = loY-1, hiY+1
	}
	// A touch of headroom.
	pad := (hiY - loY) * 0.05
	loY -= pad
	hiY += pad

	px := func(x float64) float64 { return marginL + (x-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 { return marginT + plotH - (ty(y)-loY)/(hiY-loY)*plotH }

	if _, err := fmt.Fprintf(w, header, opt.W, opt.H); err != nil {
		return err
	}
	fmt.Fprintf(w, `<rect x="0" y="0" width="%d" height="%d" fill="#ffffff"/>`+"\n", opt.W, opt.H)
	fmt.Fprintf(w, `<text x="%d" y="24" font-size="16" font-family="sans-serif" font-weight="bold">%s</text>`+"\n", marginL, xmlEscape(opt.Title))

	// Axes.
	fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#111827"/>`+"\n",
		marginL, marginT, marginL, opt.H-marginB)
	fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#111827"/>`+"\n",
		marginL, opt.H-marginB, opt.W-marginR, opt.H-marginB)
	fmt.Fprintf(w, `<text x="%g" y="%d" font-size="12" font-family="sans-serif" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, opt.H-12, xmlEscape(opt.XLabel))
	fmt.Fprintf(w, `<text x="16" y="%g" font-size="12" font-family="sans-serif" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, xmlEscape(opt.YLabel))

	// Y ticks.
	for _, tick := range yTicks(loY, hiY, opt.LogY) {
		yy := marginT + plotH - (ty(tick)-loY)/(hiY-loY)*plotH
		fmt.Fprintf(w, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#e5e7eb"/>`+"\n",
			marginL, yy, opt.W-marginR, yy)
		fmt.Fprintf(w, `<text x="%d" y="%.1f" font-size="11" font-family="sans-serif" text-anchor="end">%s</text>`+"\n",
			marginL-6, yy+4, formatTick(tick))
	}
	// X ticks at the distinct sample positions of the first series.
	seen := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.X {
			seen[x] = true
		}
	}
	for x := range seen {
		xx := px(x)
		fmt.Fprintf(w, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#e5e7eb"/>`+"\n",
			xx, marginT, xx, opt.H-marginB)
		fmt.Fprintf(w, `<text x="%.1f" y="%d" font-size="11" font-family="sans-serif" text-anchor="middle">%s</text>`+"\n",
			xx, opt.H-marginB+16, formatTick(x))
	}

	// Series.
	for si, s := range series {
		color := strokePalette[si%len(strokePalette)]
		fmt.Fprintf(w, `<polyline fill="none" stroke="%s" stroke-width="1.8" points="`, color)
		for i := range s.X {
			if opt.LogY && s.Y[i] <= 0 {
				continue
			}
			fmt.Fprintf(w, "%.1f,%.1f ", px(s.X[i]), py(s.Y[i]))
		}
		fmt.Fprintln(w, `"/>`)
		for i := range s.X {
			if opt.LogY && s.Y[i] <= 0 {
				continue
			}
			fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="2.8" fill="%s"/>`+"\n", px(s.X[i]), py(s.Y[i]), color)
		}
		// Legend.
		ly := marginT + 16*si
		fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			opt.W-marginR+8, ly, opt.W-marginR+28, ly, color)
		fmt.Fprintf(w, `<text x="%d" y="%d" font-size="11" font-family="sans-serif">%s</text>`+"\n",
			opt.W-marginR+34, ly+4, xmlEscape(s.Label))
	}
	_, err := io.WriteString(w, footer)
	return err
}

func yTicks(lo, hi float64, log bool) []float64 {
	var ticks []float64
	if log {
		for e := math.Floor(lo); e <= math.Ceil(hi); e++ {
			ticks = append(ticks, math.Pow(10, e))
		}
		return ticks
	}
	span := hi - lo
	step := math.Pow(10, math.Floor(math.Log10(span/4)))
	for _, m := range []float64{5, 2} {
		if span/(step*m) >= 4 {
			step *= m
			break
		}
	}
	for v := math.Ceil(lo/step) * step; v <= hi; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.0fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	case av >= 1 || av == 0:
		return fmt.Sprintf("%g", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func xmlEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '&':
			out = append(out, "&amp;"...)
		case '"':
			out = append(out, "&quot;"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
