// Package voronoi provides the Voronoi-diagram side of the paper's central
// analogy (Figure 2 vs Figure 3): the Voronoi diagram partitions the plane
// into regions of constant nearest neighbour exactly as the skyline diagram
// partitions it into regions of constant skyline result.
//
// This package exists for the examples and documentation, not as a
// production Voronoi implementation: it offers exact brute-force (k)NN
// queries and a rasterised Voronoi partition on an arbitrary resolution
// suitable for the SVG renderings in examples/voronoi-vs-skyline.
package voronoi

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// Nearest returns the point of pts closest to q in Euclidean distance, and
// an error on an empty dataset. Ties break toward the smaller ID, making
// results deterministic.
func Nearest(pts []geom.Point, q geom.Point) (geom.Point, error) {
	if len(pts) == 0 {
		return geom.Point{}, fmt.Errorf("voronoi: empty dataset")
	}
	best := pts[0]
	bestD := dist2(best, q)
	for _, p := range pts[1:] {
		d := dist2(p, q)
		if d < bestD || (d == bestD && p.ID < best.ID) {
			best, bestD = p, d
		}
	}
	return best, nil
}

// KNearest returns the k nearest points to q, closest first; ties break by
// ID. k larger than the dataset returns everything.
func KNearest(pts []geom.Point, q geom.Point, k int) []geom.Point {
	if k <= 0 {
		return nil
	}
	s := make([]geom.Point, len(pts))
	copy(s, pts)
	sort.Slice(s, func(i, j int) bool {
		di, dj := dist2(s[i], q), dist2(s[j], q)
		if di != dj {
			return di < dj
		}
		return s[i].ID < s[j].ID
	})
	if k > len(s) {
		k = len(s)
	}
	return s[:k]
}

func dist2(a, b geom.Point) float64 {
	var s float64
	for i := range a.Coords {
		d := a.Coords[i] - b.Coords[i]
		s += d * d
	}
	return s
}

// Raster is a rasterised Voronoi partition of the rectangle [X0,X1]x[Y0,Y1]:
// Cell[ix][iy] holds the ID of the nearest seed to the sample at the centre
// of raster pixel (ix, iy). It is the k=1 analogue of the skyline diagram's
// per-cell results, quantised for rendering.
type Raster struct {
	X0, Y0, X1, Y1 float64
	W, H           int
	Cell           [][]int
}

// Rasterize samples the Voronoi partition of pts on a W x H raster covering
// the bounding box of the points, padded by 5%.
func Rasterize(pts []geom.Point, w, h int) (*Raster, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("voronoi: empty dataset")
	}
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("voronoi: raster %dx%d invalid", w, h)
	}
	x0, y0 := math.Inf(1), math.Inf(1)
	x1, y1 := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		x0, x1 = math.Min(x0, p.X()), math.Max(x1, p.X())
		y0, y1 = math.Min(y0, p.Y()), math.Max(y1, p.Y())
	}
	padX, padY := 0.05*(x1-x0)+1e-9, 0.05*(y1-y0)+1e-9
	r := &Raster{X0: x0 - padX, Y0: y0 - padY, X1: x1 + padX, Y1: y1 + padY, W: w, H: h}
	r.Cell = make([][]int, w)
	for ix := 0; ix < w; ix++ {
		r.Cell[ix] = make([]int, h)
		for iy := 0; iy < h; iy++ {
			q := geom.Pt2(-1,
				r.X0+(float64(ix)+0.5)/float64(w)*(r.X1-r.X0),
				r.Y0+(float64(iy)+0.5)/float64(h)*(r.Y1-r.Y0))
			nn, err := Nearest(pts, q)
			if err != nil {
				return nil, err
			}
			r.Cell[ix][iy] = nn.ID
		}
	}
	return r, nil
}

// RegionSizes returns, per seed ID, the number of raster pixels in its
// Voronoi cell.
func (r *Raster) RegionSizes() map[int]int {
	sizes := make(map[int]int)
	for _, col := range r.Cell {
		for _, id := range col {
			sizes[id]++
		}
	}
	return sizes
}
