// Package client is the Go client for the skyline query service
// (internal/server): typed wrappers over the HTTP JSON API with context
// support, bounded retries with jittered exponential backoff, Retry-After
// handling for shed requests, and a circuit breaker that stops hammering a
// service that is consistently failing.
//
// Retry rules are idempotency-aware. GETs retry on any network error, any
// 5xx, and shed (429/503) responses. POST and DELETE retry only when the
// request provably never reached the application: a connect-level (dial)
// failure, or a 429/503 shed response carrying Retry-After — the server
// sheds strictly before applying state, so those are safe to resend. A plain
// 5xx on a write is surfaced immediately rather than risking a double apply.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/geom"
)

// ErrBreakerOpen is returned without issuing a request while the circuit
// breaker is open: the service failed DefaultBreakerThreshold consecutive
// times and the cooldown has not elapsed.
var ErrBreakerOpen = errors.New("skyline client: circuit breaker open")

// Defaults for the resilience knobs.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = time.Second
	DefaultMaxBackoff       = 2 * time.Second
)

// Client talks to one skyline query service. It is safe for concurrent use.
type Client struct {
	base       string
	httpc      *http.Client
	retries    int
	backoff    time.Duration
	maxBackoff time.Duration

	breakerThreshold int
	breakerCooldown  time.Duration
	br               *Breaker

	nRetries  atomic.Int64
	nShed     atomic.Int64
	lastEpoch atomic.Uint64
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client.
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.httpc = h } }

// WithRetries sets how many times a retryable failure is retried. Default 2.
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the base delay between retries; each retry doubles it
// (plus up to 50% jitter) up to the max backoff. Default 50ms.
func WithBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// WithMaxBackoff caps the exponential backoff. Default 2s.
func WithMaxBackoff(d time.Duration) Option { return func(c *Client) { c.maxBackoff = d } }

// WithBreaker tunes the circuit breaker: after threshold consecutive
// failures (5xx or network errors — shed responses do not count) the
// breaker opens and requests fail fast with ErrBreakerOpen until cooldown
// elapses, when a single half-open probe is let through. threshold <= 0
// disables the breaker. Defaults: threshold 5, cooldown 1s.
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(c *Client) {
		c.breakerThreshold = threshold
		if cooldown > 0 {
			c.breakerCooldown = cooldown
		}
	}
}

// New creates a client for the service at base (e.g. "http://localhost:8080").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:             strings.TrimRight(base, "/"),
		httpc:            &http.Client{Timeout: 10 * time.Second},
		retries:          2,
		backoff:          50 * time.Millisecond,
		maxBackoff:       DefaultMaxBackoff,
		breakerThreshold: DefaultBreakerThreshold,
		breakerCooldown:  DefaultBreakerCooldown,
	}
	for _, o := range opts {
		o(c)
	}
	c.br = NewBreaker(c.breakerThreshold, c.breakerCooldown)
	return c
}

// Counters are cumulative resilience statistics for one Client.
type Counters struct {
	Retries      int64 // re-attempts issued after a retryable failure
	Shed         int64 // 429 / Retry-After 503 responses received
	BreakerOpens int64 // times the circuit breaker (re)opened
}

// Counters returns a snapshot of the client's resilience counters.
func (c *Client) Counters() Counters {
	return Counters{
		Retries:      c.nRetries.Load(),
		Shed:         c.nShed.Load(),
		BreakerOpens: c.br.Opens(),
	}
}

// LastEpoch returns the highest snapshot epoch observed in any response's
// X-Sky-Epoch header — which published generation of the diagram the service
// (or the replica a router picked) answered from. 0 until an epoch-stamped
// response arrives.
func (c *Client) LastEpoch() uint64 { return c.lastEpoch.Load() }

// APIError is a non-2xx response from the service.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("skyline service: HTTP %d: %s", e.StatusCode, e.Message)
}

// Stats mirrors the /v1/stats response.
type Stats struct {
	Points         int  `json:"points"`
	Cells          int  `json:"cells"`
	Polyominoes    int  `json:"polyominoes"`
	DynamicEnabled bool `json:"dynamic_enabled"`
	Subcells       int  `json:"subcells"`
}

// Result mirrors the /v1/skyline response.
type Result struct {
	Kind   string    `json:"kind"`
	Query  []float64 `json:"query"`
	IDs    []int32   `json:"ids"`
	Points []Point   `json:"points"`
}

// Point is one result point.
type Point struct {
	ID     int       `json:"id"`
	Coords []float64 `json:"coords"`
}

// Health checks the service's liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.getJSON(ctx, "/healthz", &struct{}{})
}

// Stats fetches the dataset and diagram sizes.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var s Stats
	err := c.getJSON(ctx, "/v1/stats", &s)
	return s, err
}

// Skyline answers a skyline query of the given kind ("quadrant", "global",
// or "dynamic") at (x, y).
func (c *Client) Skyline(ctx context.Context, kind string, x, y float64) (Result, error) {
	var r Result
	path := fmt.Sprintf("/v1/skyline?kind=%s&x=%g&y=%g", kind, x, y)
	err := c.getJSON(ctx, path, &r)
	return r, err
}

// Insert adds a point to the served dataset.
func (c *Client) Insert(ctx context.Context, p geom.Point) error {
	body, err := json.Marshal(map[string]interface{}{"id": p.ID, "coords": p.Coords})
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, "/v1/points", body, nil)
}

// Delete removes a point from the served dataset.
func (c *Client) Delete(ctx context.Context, id int) error {
	return c.do(ctx, http.MethodDelete, fmt.Sprintf("/v1/points/%d", id), nil, nil)
}

func (c *Client) getJSON(ctx context.Context, path string, out interface{}) error {
	return c.do(ctx, http.MethodGet, path, nil, out)
}

// do issues the request under the retry policy described in the package
// comment, consulting the circuit breaker before every attempt.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out interface{}) error {
	idempotent := method == http.MethodGet
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if err := c.breakerAllow(); err != nil {
			if lastErr != nil {
				return fmt.Errorf("skyline service: %s %s: %w (last error: %v)",
					method, path, err, lastErr)
			}
			return fmt.Errorf("skyline service: %s %s: %w", method, path, err)
		}
		if attempt > 0 {
			c.nRetries.Add(1)
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.httpc.Do(req)
		if err != nil {
			c.breakerRecord(false)
			lastErr = err
			if ctx.Err() != nil {
				return fmt.Errorf("skyline service: %s %s: %w", method, path, err)
			}
			if !idempotent && !isConnectError(err) {
				// The write may have reached the server; resending could
				// apply it twice.
				return fmt.Errorf("skyline service: %s %s: %w", method, path, err)
			}
			if attempt < c.retries {
				if err := c.sleep(ctx, c.delay(attempt)); err != nil {
					return err
				}
			}
			continue
		}
		if e := parseEpoch(resp.Header.Get("X-Sky-Epoch")); e > 0 {
			// Track the highest snapshot generation seen, monotonically.
			for {
				cur := c.lastEpoch.Load()
				if e <= cur || c.lastEpoch.CompareAndSwap(cur, e) {
					break
				}
			}
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			c.breakerRecord(false)
			lastErr = err
			if !idempotent {
				return fmt.Errorf("skyline service: %s %s: %w", method, path, err)
			}
			if attempt < c.retries {
				if err := c.sleep(ctx, c.delay(attempt)); err != nil {
					return err
				}
			}
			continue
		}

		sc := resp.StatusCode
		retryAfter, hasRetryAfter := parseRetryAfter(resp.Header.Get("Retry-After"))
		shed := sc == http.StatusTooManyRequests ||
			(sc == http.StatusServiceUnavailable && hasRetryAfter)
		switch {
		case shed:
			// A deliberate shed: the server is alive and protecting itself,
			// and it sheds before touching state, so even writes are safe to
			// resend. Not a breaker failure.
			c.nShed.Add(1)
			c.breakerRecord(true)
			lastErr = &APIError{StatusCode: sc, Message: errMessage(data)}
			if !idempotent && !hasRetryAfter {
				return lastErr
			}
			if attempt < c.retries {
				wait := retryAfter
				if wait <= 0 {
					wait = c.delay(attempt)
				}
				if err := c.sleep(ctx, wait); err != nil {
					return err
				}
			}
		case sc >= 500:
			c.breakerRecord(false)
			lastErr = &APIError{StatusCode: sc, Message: errMessage(data)}
			if !idempotent {
				return lastErr
			}
			if attempt < c.retries {
				if err := c.sleep(ctx, c.delay(attempt)); err != nil {
					return err
				}
			}
		case sc < 200 || sc >= 300:
			c.breakerRecord(true)
			return &APIError{StatusCode: sc, Message: errMessage(data)}
		default:
			c.breakerRecord(true)
			if out != nil {
				if err := json.Unmarshal(data, out); err != nil {
					return fmt.Errorf("skyline service: decode %s: %w", path, err)
				}
			}
			return nil
		}
	}
	return fmt.Errorf("skyline service: %s %s failed after %d attempts: %w",
		method, path, c.retries+1, lastErr)
}

// breakerAllow gates an attempt on the circuit breaker: open and cooling
// down fails fast, open past cooldown admits exactly one half-open probe.
// The mechanics live in the exported Breaker, shared with internal/router.
func (c *Client) breakerAllow() error {
	if !c.br.Allow() {
		return ErrBreakerOpen
	}
	return nil
}

// breakerRecord feeds an attempt's outcome to the breaker.
func (c *Client) breakerRecord(ok bool) { c.br.Record(ok) }

// parseEpoch decodes an X-Sky-Epoch header; malformed or absent is 0.
func parseEpoch(h string) uint64 {
	if h == "" {
		return 0
	}
	e, err := strconv.ParseUint(h, 10, 64)
	if err != nil {
		return 0
	}
	return e
}

// delay computes the backoff before re-attempt number attempt+1:
// exponential from the base with up to 50% added jitter, capped.
func (c *Client) delay(attempt int) time.Duration {
	d := c.backoff
	for i := 0; i < attempt && d < c.maxBackoff; i++ {
		d *= 2
	}
	if c.maxBackoff > 0 && d > c.maxBackoff {
		d = c.maxBackoff
	}
	return time.Duration(float64(d) * (1 + 0.5*rand.Float64()))
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// isConnectError reports whether err happened while dialing, before any
// byte of the request could have been delivered — the only class of network
// error where resending a non-idempotent request cannot double-apply it.
func isConnectError(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// parseRetryAfter parses a Retry-After header as either delay-seconds or an
// HTTP date. The bool reports whether the header carried a usable value;
// the duration may be zero ("retry immediately"). Waits are capped at 5s so
// a confused server cannot stall the client arbitrarily.
func parseRetryAfter(h string) (time.Duration, bool) {
	const maxWait = 5 * time.Second
	if h == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(h); err == nil && secs >= 0 {
		d := time.Duration(secs) * time.Second
		if d > maxWait {
			d = maxWait
		}
		return d, true
	}
	if t, err := http.ParseTime(h); err == nil {
		d := time.Until(t)
		if d < 0 {
			d = 0
		}
		if d > maxWait {
			d = maxWait
		}
		return d, true
	}
	return 0, false
}

func errMessage(data []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	msg := strings.TrimSpace(string(data))
	if len(msg) > 200 {
		msg = msg[:200]
	}
	return msg
}
