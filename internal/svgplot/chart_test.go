package svgplot

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteLineChart(t *testing.T) {
	series := []Series{
		{Label: "baseline", X: []float64{100, 200, 400}, Y: []float64{5, 30, 180}},
		{Label: "scanning", X: []float64{100, 200, 400}, Y: []float64{1.4, 7, 35}},
	}
	var buf bytes.Buffer
	err := WriteLineChart(&buf, ChartOptions{
		Title: "build time vs n", XLabel: "n", YLabel: "ms", LogY: true,
	}, series)
	if err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if strings.Count(svg, "<polyline") != 2 {
		t.Fatalf("want 2 polylines, got %d", strings.Count(svg, "<polyline"))
	}
	if !strings.Contains(svg, "baseline") || !strings.Contains(svg, "scanning") {
		t.Fatal("legend labels missing")
	}
	if !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("incomplete document")
	}
}

func TestWriteLineChartLinearAxis(t *testing.T) {
	var buf bytes.Buffer
	err := WriteLineChart(&buf, ChartOptions{Title: "t", XLabel: "x", YLabel: "y"},
		[]Series{{Label: "a", X: []float64{1, 2}, Y: []float64{3, 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<circle") {
		t.Fatal("data markers missing")
	}
}

func TestWriteLineChartErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLineChart(&buf, ChartOptions{}, nil); err == nil {
		t.Fatal("no series must fail")
	}
	// All-nonpositive values on a log axis leave nothing to draw.
	err := WriteLineChart(&buf, ChartOptions{LogY: true},
		[]Series{{Label: "a", X: []float64{1}, Y: []float64{0}}})
	if err == nil {
		t.Fatal("no drawable points must fail")
	}
}

func TestXMLEscape(t *testing.T) {
	if got := xmlEscape(`a<b>&"c`); got != "a&lt;b&gt;&amp;&quot;c" {
		t.Fatalf("xmlEscape = %q", got)
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{2e6: "2M", 50000: "50k", 12: "12", 0.05: "0.05", 0: "0"}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%g) = %q, want %q", v, got, want)
		}
	}
}
